#include "mem/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

Bus::Bus(const BusParams &p) : _p(p), _beats(1)
{
    if (p.bytes_per_beat == 0 || p.cycles_per_beat == 0)
        fatal("bus '", p.name, "': zero beat size or duration");
}

Cycle
Bus::transfer(Cycle when, std::uint64_t bytes)
{
    const std::uint64_t beats =
        std::max<std::uint64_t>(1, divCeil(bytes, _p.bytes_per_beat));
    ++_transfers;
    _busy_cycles += beats * _p.cycles_per_beat;

    // Each beat occupies the bus for cycles_per_beat cycles; book
    // beat slots at that granularity.
    Cycle t = when;
    for (std::uint64_t b = 0; b < beats; ++b) {
        const Cycle slot = _beats.acquire(t / _p.cycles_per_beat);
        t = (slot + 1) * _p.cycles_per_beat;
    }
    return t;
}

} // namespace microlib
