/**
 * @file
 * Detailed pipelined cache model.
 *
 * This is the MicroLib cache the paper validates against SimpleScalar
 * (Section 2.2): it differs from the SimpleScalar model in exactly the
 * four documented ways, each controlled by a realism flag so the
 * Figure 1 experiment can toggle them one at a time:
 *
 *  - finite MSHR file (SimpleScalar: unlimited),
 *  - pipeline stalls (a request can delay the next; MSHR busy cycle),
 *  - back-pressure to the LSQ (exposed via delayed acceptance),
 *  - refills consume real cache ports (SimpleScalar: free ports).
 *
 * Mechanisms observe the cache through the sealed CacheHookShim:
 * demand accesses, miss-probes (victim caches and prefetch buffers can
 * supply a missing line from a side structure), evictions and refills
 * dispatch through one inlined shim straight into the bound
 * HierarchyClient — a single indirect call per event instead of the
 * old two-deep virtual chain, and none at all when no mechanism is
 * attached.
 */

#ifndef MICROLIB_MEM_CACHE_HH
#define MICROLIB_MEM_CACHE_HH

#include <string>
#include <vector>

#include "mem/mshr.hh"
#include "mem/bus.hh"
#include "mem/hierarchy_client.hh"
#include "mem/replacement.hh"
#include "mem/request.hh"
#include "mem/resource.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace microlib
{

class MemoryImage; // trace layer; only the cold content path reads it

/**
 * Sealed static-dispatch shim between a cache and the mechanism
 * observing it.
 *
 * The seed model routed every cache event through a virtual
 * CacheHooks adapter that itself virtual-dispatched into the
 * HierarchyClient — two indirect calls per demand access on the L1
 * path. This shim is final, held by value inside the Cache, and every
 * hot method is an inline null-check plus at most one virtual call
 * into the client. `wantsLineContent` is sampled once at bind time so
 * refills pay for line-content materialization only when a
 * content-directed mechanism (CDP) is actually listening.
 */
class CacheHookShim final
{
  public:
    /** Attach @p client (nullptr detaches). @p image backs the
     *  line-content callback; @p line_bytes is the cache's line. */
    void
    bind(HierarchyClient *client, CacheLevel level,
         const MemoryImage *image, std::uint64_t line_bytes)
    {
        _client = client;
        _level = level;
        _image = image;
        _line_bytes = line_bytes;
        _wants_content = client && client->wantsLineContent(level);
    }

    bool attached() const { return _client != nullptr; }

    void
    onAccess(const MemRequest &req, bool hit, bool first_use) const
    {
        if (_client)
            _client->cacheAccess(_level, req, hit, first_use);
    }

    bool
    onMissProbe(Addr line_addr, Cycle now, Cycle &extra_latency) const
    {
        return _client && _client->cacheMissProbe(_level, line_addr,
                                                  now, extra_latency);
    }

    void
    onEvict(Addr line_addr, bool dirty, Cycle now) const
    {
        if (_client)
            _client->cacheEvict(_level, line_addr, dirty, now);
    }

    void
    onRefill(Addr line_addr, AccessKind cause, Cycle now) const
    {
        if (!_client)
            return;
        _client->cacheRefill(_level, line_addr, cause, now);
        if (_wants_content)
            refillContent(line_addr, cause, now);
    }

  private:
    /** Cold path: materialize the refilled line's words for CDP. */
    void refillContent(Addr line_addr, AccessKind cause,
                       Cycle now) const;

    HierarchyClient *_client = nullptr;
    const MemoryImage *_image = nullptr;
    std::uint64_t _line_bytes = 0;
    CacheLevel _level = CacheLevel::L1D;
    bool _wants_content = false;
};

/** Cache geometry, timing and realism flags. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size = 32 * 1024;
    std::uint64_t line = 32;
    unsigned assoc = 1;
    unsigned ports = 4;
    Cycle latency = 1;
    unsigned mshrs = 8;
    unsigned reads_per_mshr = 4;

    // Realism flags (all true = MicroLib model, all false =
    // SimpleScalar-like model; Figures 1 and 9).
    bool finite_mshr = true;
    bool pipeline_stalls = true;
    bool refill_uses_ports = true;
    bool port_contention = true;
};

/** Set-associative write-back write-allocate cache. */
class Cache : public MemDevice
{
  public:
    /**
     * @param p geometry/timing
     * @param parent next level (L2 or memory); may be nullptr for
     *        tests that treat misses as constant-latency
     * @param parent_bus bus between this cache and the parent
     *        (nullptr = direct connection)
     */
    Cache(const CacheParams &p, MemDevice *parent, Bus *parent_bus);

    Cycle access(const MemRequest &req) override;
    const char *deviceName() const override { return _p.name.c_str(); }

    /**
     * Attach/detach the mechanism observer for this cache level
     * (nullptr detaches). @p image backs the line-content callback
     * for content-directed mechanisms; may be nullptr (zero-filled
     * lines are reported then).
     */
    void
    bindClient(HierarchyClient *client, CacheLevel level,
               const MemoryImage *image)
    {
        _hooks.bind(client, level, image, _p.line);
    }

    /** Tag probe without state change. */
    bool probe(Addr addr) const;

    /** True if the line is present and was filled by a prefetch and
     *  not yet used by a demand access. */
    bool linePrefetched(Addr addr) const;

    /** Invalidate a line (mechanism side structures use this when
     *  migrating a line out, e.g. victim cache swaps). */
    void invalidate(Addr addr);

    /** Register this cache's statistics under its name. */
    void registerStats(StatSet &stats) const;

    const CacheParams &params() const { return _p; }
    std::uint64_t sets() const { return _sets; }
    const MshrFile &mshr() const { return _mshr; }

    // Statistics (public read access for the harnesses).
    Counter demand_accesses;
    Counter demand_hits;
    Counter demand_misses;
    Counter prefetch_accesses;
    Counter prefetch_fills;
    Counter prefetch_used;    ///< prefetched lines later hit by demand
    Counter writebacks;
    Counter side_fills;       ///< misses satisfied by a side structure
    Counter delayed_hits;     ///< hits that waited on an in-flight fill
    Counter evictions;

  private:
    struct Line
    {
        Addr tag = 0;
        Cycle ready = 0;   ///< when the fill data actually arrives
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    CacheParams _p;
    MemDevice *_parent;
    Bus *_parent_bus;
    CacheHookShim _hooks;

    std::uint64_t _sets;
    std::vector<Line> _lines; // sets x assoc
    LruState _lru;
    MshrFile _mshr;

    ResourceSchedule _ports; ///< one acquisition per port per cycle
    Cycle _next_accept = 0;

    /** Reused writeback request: the miss path constructs nothing. */
    MemRequest _wb;

    std::uint64_t setIndex(Addr addr) const
    {
        return (addr / _p.line) % _sets;
    }
    Addr lineAddr(Addr addr) const { return alignDown(addr, _p.line); }
    Line &lineAt(std::uint64_t set, unsigned way)
    {
        return _lines[set * _p.assoc + way];
    }
    const Line &lineAt(std::uint64_t set, unsigned way) const
    {
        return _lines[set * _p.assoc + way];
    }

    /** Way holding @p addr, or -1. */
    int findWay(Addr addr) const;

    /** Acquire a cache port at or after @p t. */
    Cycle acquirePort(Cycle t);

    /** Install a line, evicting as needed; returns installed way.
     *  @param ready cycle the fill data arrives (hits before this
     *  wait for it — the timestamp-model equivalent of merging with
     *  an in-flight refill). */
    unsigned install(Addr line_addr, bool dirty, bool prefetched,
                     Cycle now, Cycle ready);

    /** Post a dirty victim to the parent (cold half of install). */
    void writebackVictim(Addr tag, Cycle now);

    Cycle handleWriteback(const MemRequest &req);
    Cycle fetchFromParent(Addr line_addr, AccessKind kind, Addr pc,
                          Cycle when);
};

} // namespace microlib

#endif // MICROLIB_MEM_CACHE_HH
