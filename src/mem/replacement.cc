#include "mem/replacement.hh"

#include <bit>

#include "sim/logging.hh"

namespace microlib
{

LruState::LruState(std::size_t sets, std::size_t ways)
    : _sets(sets), _ways(ways), _stamps(sets * ways, 0)
{
    if (sets == 0 || ways == 0)
        fatal("LruState needs non-zero geometry");
    if (ways > 64)
        fatal("LruState supports at most 64 ways (occupancy masks)");
}

void
LruState::touch(std::size_t set, std::size_t way)
{
    _stamps[set * _ways + way] = ++_tick;
}

std::size_t
LruState::victim(std::size_t set, std::uint64_t valid_mask) const
{
    // Invalid way first: the lowest zero bit, found in one
    // instruction instead of a scan.
    const auto w = static_cast<std::size_t>(std::countr_one(valid_mask));
    if (w < _ways)
        return w;
    return lruWay(set);
}

std::size_t
LruState::lruWay(std::size_t set) const
{
    std::size_t best = 0;
    std::uint64_t best_stamp = _stamps[set * _ways];
    for (std::size_t w = 1; w < _ways; ++w) {
        const std::uint64_t s = _stamps[set * _ways + w];
        if (s < best_stamp) {
            best_stamp = s;
            best = w;
        }
    }
    return best;
}

} // namespace microlib
