#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/memory_image.hh"

namespace microlib
{

void
CacheHookShim::refillContent(Addr line_addr, AccessKind cause,
                             Cycle now) const
{
    std::vector<Word> words;
    if (_image)
        _image->readLine(line_addr, _line_bytes, words);
    else
        words.assign(_line_bytes / 8, 0);
    _client->lineContent(_level, line_addr, words, cause, now);
}

Cache::Cache(const CacheParams &p, MemDevice *parent, Bus *parent_bus)
    : _p(p), _parent(parent), _parent_bus(parent_bus),
      _sets(p.size / (p.line * p.assoc)),
      _lines(_sets * p.assoc),
      _lru(_sets, p.assoc),
      _mshr(p.mshrs, p.reads_per_mshr, !p.finite_mshr),
      _ports(p.ports)
{
    if (!isPowerOfTwo(p.size) || !isPowerOfTwo(p.line) ||
        p.size % (p.line * p.assoc) != 0)
        fatal("cache '", p.name, "': inconsistent geometry");
    if (!isPowerOfTwo(_sets))
        fatal("cache '", p.name, "': set count must be a power of two");
    if (p.ports == 0)
        fatal("cache '", p.name, "': needs at least one port");
    if (p.assoc > 64)
        fatal("cache '", p.name,
              "': associativity above 64 exceeds the occupancy mask");
    _wb.kind = AccessKind::Writeback;
}

int
Cache::findWay(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = lineAddr(addr);
    for (unsigned w = 0; w < _p.assoc; ++w) {
        const Line &l = lineAt(set, w);
        if (l.valid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::probe(Addr addr) const
{
    return findWay(addr) >= 0;
}

bool
Cache::linePrefetched(Addr addr) const
{
    const int w = findWay(addr);
    if (w < 0)
        return false;
    return lineAt(setIndex(addr), static_cast<unsigned>(w)).prefetched;
}

void
Cache::invalidate(Addr addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return;
    lineAt(setIndex(addr), static_cast<unsigned>(w)).valid = false;
}

Cycle
Cache::acquirePort(Cycle t)
{
    if (!_p.port_contention)
        return t;
    // Pipelined ports: `ports` new accesses may start each cycle;
    // the schedule backfills gaps left by future-booked refills.
    return _ports.acquire(t);
}

unsigned
Cache::install(Addr line_addr, bool dirty, bool prefetched, Cycle now,
               Cycle ready)
{
    const std::uint64_t set = setIndex(line_addr);

    // Already present (race between a side fill and a refill): update.
    if (int w = findWay(line_addr); w >= 0) {
        Line &l = lineAt(set, static_cast<unsigned>(w));
        l.dirty = l.dirty || dirty;
        l.ready = std::min(l.ready, ready);
        _lru.touch(set, static_cast<unsigned>(w));
        return static_cast<unsigned>(w);
    }

    // Occupancy as a 64-bit mask: the seed built a std::vector<bool>
    // here — a heap allocation on every miss.
    std::uint64_t valid = 0;
    for (unsigned w = 0; w < _p.assoc; ++w)
        valid |= std::uint64_t{lineAt(set, w).valid} << w;
    const unsigned victim =
        static_cast<unsigned>(_lru.victim(set, valid));

    Line &l = lineAt(set, victim);
    if (l.valid) {
        ++evictions;
        _hooks.onEvict(l.tag, l.dirty, now);
        if (l.dirty)
            writebackVictim(l.tag, now);
    }

    l.tag = lineAddr(line_addr);
    l.ready = ready;
    l.valid = true;
    l.dirty = dirty;
    l.prefetched = prefetched;
    _lru.touch(set, victim);
    return victim;
}

void
Cache::writebackVictim(Addr tag, Cycle now)
{
    ++writebacks;
    if (!_parent)
        return;
    Cycle t = now;
    if (_parent_bus)
        t = _parent_bus->transfer(t, _p.line);
    // _wb is a hoisted member (kind fixed at construction): the miss
    // path performs no request construction, only field updates.
    _wb.addr = tag;
    _wb.when = t;
    _wb.pc = 0;
    _parent->access(_wb); // posted
}

Cycle
Cache::fetchFromParent(Addr line_addr, AccessKind kind, Addr pc,
                       Cycle when)
{
    if (!_parent)
        return when; // leaf configuration (unit tests)

    // Requests travel on the address path (fixed one-cycle hop); the
    // shared data bus carries only responses and writebacks, so a
    // booked response does not stall the next request.
    Cycle send = when;
    if (_parent_bus)
        send = when + 1;

    MemRequest req;
    req.addr = line_addr;
    // A store miss still *reads* the line from the parent
    // (allocate-on-write); prefetches keep their kind so lower
    // levels can account for them.
    req.kind = kind == AccessKind::Prefetch ? AccessKind::Prefetch
                                            : AccessKind::DemandRead;
    req.when = send;
    req.pc = pc;
    const Cycle parent_ready = _parent->access(req);

    Cycle resp = parent_ready;
    if (_parent_bus)
        resp = _parent_bus->transfer(resp, _p.line);
    return resp;
}

Cycle
Cache::handleWriteback(const MemRequest &req)
{
    Cycle t = req.when;
    if (_p.pipeline_stalls)
        t = std::max(t, _next_accept);
    t = acquirePort(t);

    const Addr line = lineAddr(req.addr);
    if (int w = findWay(line); w >= 0) {
        const std::uint64_t set = setIndex(line);
        Line &l = lineAt(set, static_cast<unsigned>(w));
        l.dirty = true;
        _lru.touch(set, static_cast<unsigned>(w));
    } else {
        // Full-line write from the child: allocate without fetching.
        install(line, true, false, t, t);
        _hooks.onRefill(line, AccessKind::Writeback, t);
    }
    return t + 1;
}

Cycle
Cache::access(const MemRequest &req)
{
    if (req.kind == AccessKind::Writeback)
        return handleWriteback(req);

    const bool demand = isDemand(req.kind);
    const Addr line = lineAddr(req.addr);

    Cycle t = req.when;
    if (_p.pipeline_stalls)
        t = std::max(t, _next_accept);
    t = acquirePort(t);

    if (demand)
        ++demand_accesses;
    else
        ++prefetch_accesses;

    // ------------------------------------------------------------ hit
    if (int w = findWay(line); w >= 0) {
        const std::uint64_t set = setIndex(line);
        Line &l = lineAt(set, static_cast<unsigned>(w));
        bool first_use = false;
        if (demand) {
            ++demand_hits;
            if (l.prefetched) {
                l.prefetched = false;
                first_use = true;
                ++prefetch_used;
            }
            if (req.kind == AccessKind::DemandWrite)
                l.dirty = true;
            _lru.touch(set, static_cast<unsigned>(w));
            _hooks.onAccess(req, true, first_use);
        }
        // A hit on a line whose fill is still in flight waits for the
        // data: this is how merging with an in-flight (pre)fetch is
        // expressed in the timestamp model, and what makes a too-late
        // prefetch cost real time.
        const Cycle done = std::max(t + _p.latency, l.ready);
        if (demand && l.ready > t + _p.latency)
            ++delayed_hits;
        return done;
    }

    // ----------------------------------------------------------- miss
    if (demand) {
        ++demand_misses;
        _hooks.onAccess(req, false, false);

        // Side structures (victim cache, FVC, prefetch buffers) may
        // hold the line.
        Cycle extra = 0;
        if (_hooks.onMissProbe(line, t + _p.latency, extra)) {
            ++side_fills;
            install(line, req.kind == AccessKind::DemandWrite, false,
                    t, t + _p.latency + extra);
            // A side fill is a refill too: generation-tracking
            // mechanisms must see the line enter the cache.
            _hooks.onRefill(line, req.kind, t + _p.latency + extra);
            return t + _p.latency + extra;
        }
    } else if (_p.pipeline_stalls) {
        // A prefetch that hits needs no further resources; a missing
        // prefetch continues below but must not block the pipeline
        // beyond its port slot.
    }

    Cycle miss_t = t + _p.latency;

    // MSHR allocation. Prefetches allocate too: a demand access that
    // arrives while a prefetch for the same line is in flight merges
    // and rides the refill instead of duplicating the memory fetch —
    // without this, every slightly-late prefetch doubles the DRAM
    // traffic. Flow control of prefetch volume still lives in the
    // mechanisms' request queues (Table 3).
    const MshrOutcome out = _mshr.allocate(line, miss_t);
    if (demand && _p.pipeline_stalls) {
        // The MSHR is unavailable for one cycle upon a request;
        // same-line conflicts also stall the front.
        _next_accept = std::max(_next_accept, out.start + 1);
    }
    if (out.merged) {
        // Ride the in-flight refill.
        return std::max(out.data_ready, miss_t) + 1;
    }
    miss_t = out.start;
    const bool used_mshr = true;

    const Cycle resp = fetchFromParent(line, req.kind, req.pc, miss_t);

    // Refills contend for real ports in the MicroLib model.
    Cycle fill = resp;
    if (_p.refill_uses_ports)
        fill = acquirePort(resp);

    install(line, req.kind == AccessKind::DemandWrite,
            req.kind == AccessKind::Prefetch, fill, fill + 1);
    if (req.kind == AccessKind::Prefetch)
        ++prefetch_fills;
    if (used_mshr)
        _mshr.complete(line, fill + 1);
    _hooks.onRefill(line, req.kind, fill);

    return fill + 1;
}

void
Cache::registerStats(StatSet &stats) const
{
    const std::string n = _p.name;
    stats.registerCounter(n + ".demand_accesses", &demand_accesses);
    stats.registerCounter(n + ".demand_hits", &demand_hits);
    stats.registerCounter(n + ".demand_misses", &demand_misses);
    stats.registerCounter(n + ".prefetch_accesses", &prefetch_accesses);
    stats.registerCounter(n + ".prefetch_fills", &prefetch_fills);
    stats.registerCounter(n + ".prefetch_used", &prefetch_used);
    stats.registerCounter(n + ".writebacks", &writebacks);
    stats.registerCounter(n + ".side_fills", &side_fills);
    stats.registerCounter(n + ".delayed_hits", &delayed_hits);
    stats.registerCounter(n + ".evictions", &evictions);
    stats.registerCounter(n + ".mshr_full_stalls", &_mshr.fullStalls());
    stats.registerCounter(n + ".mshr_merges", &_mshr.merges());
}

} // namespace microlib
