/**
 * @file
 * Memory hierarchy: L1I + L1D over a shared L1/L2 bus, a unified L2,
 * the front-side bus, and a memory model (SDRAM or constant-latency).
 *
 * The hierarchy is also the attachment point for data-cache
 * mechanisms: it forwards cache events to a HierarchyClient (the
 * mechanism) and offers the prefetch services mechanisms use. The
 * client interface lives here, below the mechanisms, so the mem
 * library stays independent of the mechanism library.
 */

#ifndef MICROLIB_MEM_HIERARCHY_HH
#define MICROLIB_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/const_memory.hh"
#include "mem/sdram.hh"
#include "trace/memory_image.hh"

namespace microlib
{

/** Which memory model backs the L2 (Figure 8's three points). */
enum class MemoryModelKind
{
    ConstantLatency, ///< SimpleScalar-like flat latency
    Sdram,           ///< detailed SDRAM (Table 1 timings)
};

/** Cache level tag used in client callbacks. */
enum class CacheLevel : std::uint8_t { L1D, L2 };

/** Mechanism-facing event interface (implemented in src/core). */
class HierarchyClient
{
  public:
    virtual ~HierarchyClient() = default;

    virtual void
    cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                bool first_use)
    {
        (void)lvl; (void)req; (void)hit; (void)first_use;
    }

    /** Side-structure probe on a demand miss (victim caches,
     *  prefetch buffers). Return true to supply the line after
     *  @p extra_latency cycles. */
    virtual bool
    cacheMissProbe(CacheLevel lvl, Addr line, Cycle now,
                   Cycle &extra_latency)
    {
        (void)lvl; (void)line; (void)now; (void)extra_latency;
        return false;
    }

    virtual void
    cacheEvict(CacheLevel lvl, Addr line, bool dirty, Cycle now)
    {
        (void)lvl; (void)line; (void)dirty; (void)now;
    }

    virtual void
    cacheRefill(CacheLevel lvl, Addr line, AccessKind cause, Cycle now)
    {
        (void)lvl; (void)line; (void)cause; (void)now;
    }

    /** Opt in to receive refilled line contents (CDP scans them). */
    virtual bool wantsLineContent(CacheLevel lvl) const
    {
        (void)lvl;
        return false;
    }

    virtual void
    lineContent(CacheLevel lvl, Addr line, const std::vector<Word> &words,
                AccessKind cause, Cycle now)
    {
        (void)lvl; (void)line; (void)words; (void)cause; (void)now;
    }
};

/** Full hierarchy configuration. */
struct HierarchyParams
{
    CacheParams l1d;
    CacheParams l1i;
    CacheParams l2;
    BusParams l1l2_bus;
    BusParams fsb;
    MemoryModelKind memory = MemoryModelKind::Sdram;
    Cycle const_latency = 70;
    SdramParams sdram;
    bool model_icache = true;
};

/** The assembled memory system. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &p,
              std::shared_ptr<const MemoryImage> image);
    ~Hierarchy();

    Hierarchy(const Hierarchy &) = delete;
    Hierarchy &operator=(const Hierarchy &) = delete;

    /** Attach the mechanism; pass nullptr to detach. */
    void setClient(HierarchyClient *client) { _client = client; }

    /** Core-side operations; return data-ready / accept cycle. */
    Cycle load(Addr addr, Addr pc, Cycle when);
    Cycle store(Addr addr, Addr pc, Cycle when);
    Cycle ifetch(Addr pc, Cycle when);

    // ----- services for mechanisms -------------------------------

    /** Prefetch @p addr into the L2; returns fill-complete cycle. */
    Cycle prefetchIntoL2(Addr addr, Addr pc, Cycle now);

    /**
     * Fetch the line containing @p addr towards an L1-side prefetch
     * buffer (occupying the L1/L2 bus and L2/memory); the line is
     * *not* installed in L1. Returns the buffer-ready cycle.
     */
    Cycle fetchForL1Buffer(Addr addr, Cycle now);

    bool l1Probe(Addr addr) const { return _l1d->probe(addr); }
    bool l2Probe(Addr addr) const { return _l2->probe(addr); }

    /** Words of the line containing @p addr, from the memory image. */
    std::vector<Word> readLine(Addr addr, CacheLevel lvl) const;

    Cache &l1d() { return *_l1d; }
    Cache &l1i() { return *_l1i; }
    Cache &l2() { return *_l2; }
    const Cache &l1d() const { return *_l1d; }
    const Cache &l2() const { return *_l2; }
    Bus &l1l2Bus() { return *_l1l2_bus; }
    Bus &fsb() { return *_fsb; }

    /** SDRAM model or nullptr when constant-latency memory is used. */
    Sdram *sdram() { return _sdram.get(); }

    const HierarchyParams &params() const { return _p; }
    const MemoryImage *image() const { return _image.get(); }

    void registerStats(StatSet &stats) const;

  private:
    struct LevelHooks;

    HierarchyParams _p;
    std::shared_ptr<const MemoryImage> _image;
    HierarchyClient *_client = nullptr;

    std::unique_ptr<Bus> _l1l2_bus;
    std::unique_ptr<Bus> _fsb;
    std::unique_ptr<Sdram> _sdram;
    std::unique_ptr<ConstMemory> _constmem;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1d;
    std::unique_ptr<Cache> _l1i;

    std::unique_ptr<LevelHooks> _l1_hooks;
    std::unique_ptr<LevelHooks> _l2_hooks;

    MemDevice *memoryDevice();
};

} // namespace microlib

#endif // MICROLIB_MEM_HIERARCHY_HH
