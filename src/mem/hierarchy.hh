/**
 * @file
 * Memory hierarchy: L1I + L1D over a shared L1/L2 bus, a unified L2,
 * the front-side bus, and a memory model (SDRAM or constant-latency).
 *
 * The hierarchy is also the attachment point for data-cache
 * mechanisms: it forwards cache events to a HierarchyClient (the
 * mechanism) and offers the prefetch services mechanisms use. The
 * client interface lives here, below the mechanisms, so the mem
 * library stays independent of the mechanism library.
 */

#ifndef MICROLIB_MEM_HIERARCHY_HH
#define MICROLIB_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/const_memory.hh"
#include "mem/hierarchy_client.hh"
#include "mem/sdram.hh"
#include "trace/memory_image.hh"

namespace microlib
{

/** Which memory model backs the L2 (Figure 8's three points). */
enum class MemoryModelKind
{
    ConstantLatency, ///< SimpleScalar-like flat latency
    Sdram,           ///< detailed SDRAM (Table 1 timings)
};

/** Full hierarchy configuration. */
struct HierarchyParams
{
    CacheParams l1d;
    CacheParams l1i;
    CacheParams l2;
    BusParams l1l2_bus;
    BusParams fsb;
    MemoryModelKind memory = MemoryModelKind::Sdram;
    Cycle const_latency = 70;
    SdramParams sdram;
    bool model_icache = true;
};

/** The assembled memory system. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &p,
              std::shared_ptr<const MemoryImage> image);
    ~Hierarchy();

    Hierarchy(const Hierarchy &) = delete;
    Hierarchy &operator=(const Hierarchy &) = delete;

    /** Attach the mechanism; pass nullptr to detach. Rebinds the
     *  L1D and L2 hook shims (one devirtualized dispatch each). */
    void setClient(HierarchyClient *client);

    /** Core-side operations; return data-ready / accept cycle. */
    Cycle load(Addr addr, Addr pc, Cycle when);
    Cycle store(Addr addr, Addr pc, Cycle when);
    Cycle ifetch(Addr pc, Cycle when);

    // ----- services for mechanisms -------------------------------

    /** Prefetch @p addr into the L2; returns fill-complete cycle. */
    Cycle prefetchIntoL2(Addr addr, Addr pc, Cycle now);

    /**
     * Fetch the line containing @p addr towards an L1-side prefetch
     * buffer (occupying the L1/L2 bus and L2/memory); the line is
     * *not* installed in L1. Returns the buffer-ready cycle.
     */
    Cycle fetchForL1Buffer(Addr addr, Cycle now);

    bool l1Probe(Addr addr) const { return _l1d->probe(addr); }
    bool l2Probe(Addr addr) const { return _l2->probe(addr); }

    /** Words of the line containing @p addr, from the memory image. */
    std::vector<Word> readLine(Addr addr, CacheLevel lvl) const;

    Cache &l1d() { return *_l1d; }
    Cache &l1i() { return *_l1i; }
    Cache &l2() { return *_l2; }
    const Cache &l1d() const { return *_l1d; }
    const Cache &l2() const { return *_l2; }
    Bus &l1l2Bus() { return *_l1l2_bus; }
    Bus &fsb() { return *_fsb; }

    /** SDRAM model or nullptr when constant-latency memory is used. */
    Sdram *sdram() { return _sdram.get(); }

    const HierarchyParams &params() const { return _p; }
    const MemoryImage *image() const { return _image.get(); }

    void registerStats(StatSet &stats) const;

  private:
    HierarchyParams _p;
    std::shared_ptr<const MemoryImage> _image;
    HierarchyClient *_client = nullptr;

    std::unique_ptr<Bus> _l1l2_bus;
    std::unique_ptr<Bus> _fsb;
    std::unique_ptr<Sdram> _sdram;
    std::unique_ptr<ConstMemory> _constmem;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1d;
    std::unique_ptr<Cache> _l1i;

    MemDevice *memoryDevice();
};

} // namespace microlib

#endif // MICROLIB_MEM_HIERARCHY_HH
