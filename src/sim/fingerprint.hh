/**
 * @file
 * Configuration fingerprinting: a streaming FNV-1a hasher with typed
 * mix operations.
 *
 * The result store keys every persisted run by a 64-bit hash of the
 * full configuration that produced it (core, caches, buses, SDRAM,
 * trace window, mechanism options). Field values are serialized into
 * the hash through typed mixers — integers widened to a fixed 8-byte
 * form, doubles by bit pattern, strings length-prefixed — so the
 * fingerprint is independent of struct padding and identical across
 * builds of the same configuration, and a separator is mixed between
 * fields so adjacent values cannot alias ("ab","c" vs "a","bc").
 */

#ifndef MICROLIB_SIM_FINGERPRINT_HH
#define MICROLIB_SIM_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace microlib
{

/** Streaming 64-bit FNV-1a hash over typed field values. */
class Fingerprint
{
  public:
    /** Mix one raw byte. */
    void
    byte(std::uint8_t b)
    {
        _state ^= b;
        _state *= prime;
    }

    /** Mix a bool (make_unsigned<bool> is ill-formed). */
    void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }

    /** Mix an integral value, widened to 8 bytes. */
    template <typename T>
    std::enable_if_t<std::is_integral_v<T>, void>
    mix(T v)
    {
        auto u = static_cast<std::uint64_t>(
            static_cast<std::make_unsigned_t<T>>(v));
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(u >> (8 * i)));
        sep();
    }

    /** Mix an enum value via its underlying type. */
    template <typename T>
    std::enable_if_t<std::is_enum_v<T>, void>
    mix(T v)
    {
        mix(static_cast<std::underlying_type_t<T>>(v));
    }

    /** Mix a double by bit pattern (exact, no text rounding). */
    void
    mix(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    /** Mix a string, length-prefixed. */
    void
    mix(const std::string &s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (const char c : s)
            byte(static_cast<std::uint8_t>(c));
        sep();
    }

    std::uint64_t value() const { return _state; }

    /** The current state as a fixed-width 16-digit hex string. */
    std::string hex() const { return hexOf(_state); }

    /** @p v as the fixed-width lowercase hex form parseHex() reads —
     *  the one place the record hash encoding is defined. */
    static std::string hexOf(std::uint64_t v);

    /** Parse a hexOf() string back into a value; false on bad input. */
    static bool parseHex(const std::string &s, std::uint64_t &out);

  private:
    /** Field separator: keeps adjacent fields from aliasing. */
    void sep() { byte(0xFF); }

    static constexpr std::uint64_t offset_basis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t _state = offset_basis;
};

} // namespace microlib

#endif // MICROLIB_SIM_FINGERPRINT_HH
