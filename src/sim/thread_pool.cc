#include "sim/thread_pool.hh"

#include <cstdlib>

namespace microlib
{

ThreadPool::ThreadPool(unsigned workers)
{
    _workers.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mu);
        _stopping = true;
    }
    _work_ready.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
ThreadPool::submit(Job job)
{
    if (_workers.empty()) {
        job();
        return;
    }
    {
        std::unique_lock<std::mutex> lock(_mu);
        _queue.push_back(std::move(job));
        ++_in_flight;
    }
    _work_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mu);
    _idle.wait(lock, [this] { return _in_flight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_mu);
            _work_ready.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty())
                return; // stopping and drained
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(_mu);
            if (--_in_flight == 0)
                _idle.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned threads = std::thread::hardware_concurrency();
    if (const char *env = std::getenv("MICROLIB_THREADS"))
        threads = static_cast<unsigned>(std::atoi(env));
    return threads == 0 ? 1 : threads;
}

} // namespace microlib
