/**
 * @file
 * One shared version stamp for every MicroLib binary.
 *
 * A sweep service splits one logical system across processes built at
 * different times (daemon, workers, clients), so "which build is
 * this?" must be answerable — and comparable — everywhere. Two layers:
 *
 *  - gitDescribe(): the human-facing build identity (git describe at
 *    configure time; "unknown" outside a git checkout). Informational
 *    only: two differently-built binaries interoperate fine as long
 *    as their schema tuple matches.
 *
 *  - schemaTuple(): the *compatibility* identity — the result-store
 *    record schema, the trace-arena file schema, and the sweep-hash
 *    algorithm version, joined into one canonical string. Any
 *    mismatch means the processes would disagree about what a
 *    persisted byte means, so microlib_sweepd refuses workers whose
 *    tuple differs from its own (docs/SWEEP_SERVICE.md).
 *
 * All three CLI tools print versionString() for --version, so a
 * client/daemon/worker skew is diagnosable by eye: compare the lines.
 */

#ifndef MICROLIB_SIM_VERSION_HH
#define MICROLIB_SIM_VERSION_HH

#include <string>

namespace microlib
{

/** `git describe --always --dirty` captured at configure time, or
 *  "unknown" when the build tree had no git metadata. */
const char *gitDescribe();

/** The canonical on-disk/protocol compatibility tuple:
 *  "store=<result_store_schema>;arena=<TraceArena::schema_version>;"
 *  "sweephash=<sweep_hash_version>". Byte-compared by the daemon
 *  when a worker attaches. */
std::string schemaTuple();

/** The full one-line --version output for @p tool:
 *  "<tool> <git> (<schema tuple>)". */
std::string versionString(const char *tool);

} // namespace microlib

#endif // MICROLIB_SIM_VERSION_HH
