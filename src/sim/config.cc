#include "sim/config.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace microlib
{

bool
parseScaledU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    // strtoull skips leading whitespace and accepts a sign (wrapping
    // negatives); demand the value start with a digit outright.
    if (text[0] < '0' || text[0] > '9')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || errno == ERANGE)
        return false;
    std::uint64_t scale = 1;
    if (*end != '\0') {
        if (end[1] != '\0')
            return false;
        switch (*end) {
          case 'k': case 'K': scale = 1ull << 10; break;
          case 'm': case 'M': scale = 1ull << 20; break;
          case 'g': case 'G': scale = 1ull << 30; break;
          default: return false;
        }
    }
    if (scale != 1 && v > UINT64_MAX / scale)
        return false;
    out = static_cast<std::uint64_t>(v) * scale;
    return true;
}

bool
parseBoolWord(const std::string &text, bool &out)
{
    if (text == "0" || text == "false" || text == "off") {
        out = false;
        return true;
    }
    if (text == "1" || text == "true" || text == "on") {
        out = true;
        return true;
    }
    return false;
}

void
ParamTable::section(const std::string &title)
{
    _rows.push_back({true, title, ""});
}

void
ParamTable::print(std::ostream &os) const
{
    std::size_t key_width = 0;
    for (const auto &row : _rows)
        if (!row.is_section)
            key_width = std::max(key_width, row.key.size());

    for (const auto &row : _rows) {
        if (row.is_section) {
            os << "-- " << row.key << " --\n";
        } else {
            os << "  " << row.key
               << std::string(key_width - row.key.size() + 2, ' ')
               << row.value << "\n";
        }
    }
}

} // namespace microlib
