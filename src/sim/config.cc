#include "sim/config.hh"

#include <algorithm>

namespace microlib
{

void
ParamTable::section(const std::string &title)
{
    _rows.push_back({true, title, ""});
}

void
ParamTable::print(std::ostream &os) const
{
    std::size_t key_width = 0;
    for (const auto &row : _rows)
        if (!row.is_section)
            key_width = std::max(key_width, row.key.size());

    for (const auto &row : _rows) {
        if (row.is_section) {
            os << "-- " << row.key << " --\n";
        } else {
            os << "  " << row.key
               << std::string(key_width - row.key.size() + 2, ' ')
               << row.value << "\n";
        }
    }
}

} // namespace microlib
