#include "sim/stats.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace microlib
{

Distribution::Distribution(double bucket_width, std::size_t buckets)
    : _width(bucket_width), _counts(buckets, 0)
{
    if (bucket_width <= 0.0 || buckets == 0)
        fatal("Distribution requires positive bucket width and count");
}

void
Distribution::sample(double v)
{
    const auto idx = static_cast<std::size_t>(v / _width);
    if (v < 0)
        panic("Distribution sample below zero: ", v);
    if (idx < _counts.size())
        ++_counts[idx];
    else
        ++_overflow;
    ++_total;
    _sum += v;
}

void
Distribution::reset()
{
    for (auto &c : _counts)
        c = 0;
    _overflow = 0;
    _total = 0;
    _sum = 0.0;
}

StatSet::StatSet()
{
    // A full hierarchy plus mechanism registers ~40 stats; reserving
    // past that keeps registration rehash-free.
    _counters.reserve(64);
    _averages.reserve(16);
}

void
StatSet::registerCounter(const std::string &name, const Counter *c)
{
    if (!_counters.emplace(name, c).second)
        panic("duplicate stat name: ", name);
}

void
StatSet::registerAverage(const std::string &name, const Average *a)
{
    if (!_averages.emplace(name, a).second)
        panic("duplicate stat name: ", name);
}

double
StatSet::get(const std::string &name) const
{
    if (auto it = _counters.find(name); it != _counters.end())
        return static_cast<double>(it->second->value());
    if (auto it = _averages.find(name); it != _averages.end())
        return it->second->mean();
    panic("unknown stat: ", name);
}

bool
StatSet::has(const std::string &name) const
{
    return _counters.count(name) || _averages.count(name);
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    for (const auto &kv : _counters)
        out.push_back(kv.first);
    for (const auto &kv : _averages)
        out.push_back(kv.first);
    std::sort(out.begin(), out.end());
    return out;
}

void
StatSet::snapshot(std::map<std::string, double> &out) const
{
    for (const auto &kv : _counters)
        out[kv.first] = static_cast<double>(kv.second->value());
    for (const auto &kv : _averages)
        out[kv.first] = kv.second->mean();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &name : names())
        os << name << " = " << get(name) << "\n";
}

} // namespace microlib
