/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the workload generators draws from an
 * explicitly seeded Rng so that traces, SimPoints and therefore every
 * reported number are bit-reproducible across runs and platforms
 * (std::mt19937 distributions are not guaranteed identical across
 * standard library implementations, so we implement our own).
 */

#ifndef MICROLIB_SIM_RANDOM_HH
#define MICROLIB_SIM_RANDOM_HH

#include <cstdint>

#include "sim/types.hh"

namespace microlib
{

/**
 * xoshiro256** generator (Blackman & Vigna), seeded via splitmix64.
 *
 * Fast, high-quality, and fully specified: identical sequences on any
 * conforming C++ implementation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /**
     * Geometric-flavoured draw: returns small values most of the time.
     * Used for dependence distances and burst lengths.
     * @param mean approximate mean of the draw (>= 1).
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t s[4];

    static std::uint64_t splitmix64(std::uint64_t &x);
    static std::uint64_t rotl(std::uint64_t x, int k);
};

} // namespace microlib

#endif // MICROLIB_SIM_RANDOM_HH
