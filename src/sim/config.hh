/**
 * @file
 * Parameter table: an ordered, sectioned list of (key, value) pairs
 * used to print configuration dumps in the style of the paper's
 * Table 1. Model components contribute their parameters so every
 * benchmark binary can show exactly what was simulated.
 */

#ifndef MICROLIB_SIM_CONFIG_HH
#define MICROLIB_SIM_CONFIG_HH

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace microlib
{

/** Sectioned key/value parameter dump (cf. paper Table 1). */
class ParamTable
{
  public:
    /** Start a new section header ("Processor core", "SDRAM", ...). */
    void section(const std::string &title);

    /** Add one parameter line to the current section. */
    template <typename T>
    void
    add(const std::string &key, const T &value)
    {
        std::ostringstream os;
        os << value;
        _rows.push_back({false, key, os.str()});
    }

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    struct Row
    {
        bool is_section;
        std::string key;
        std::string value;
    };

    std::vector<Row> _rows;
};

} // namespace microlib

#endif // MICROLIB_SIM_CONFIG_HH
