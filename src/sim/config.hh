/**
 * @file
 * Parameter table: an ordered, sectioned list of (key, value) pairs
 * used to print configuration dumps in the style of the paper's
 * Table 1. Model components contribute their parameters so every
 * benchmark binary can show exactly what was simulated.
 */

#ifndef MICROLIB_SIM_CONFIG_HH
#define MICROLIB_SIM_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace microlib
{

/**
 * Parse a non-negative integer with an optional binary magnitude
 * suffix: "4096", "256k", "1M", "2G" (suffixes are 1024-based and
 * case-insensitive). Used by configuration axes and CLI flags, where
 * cache sizes are naturally written "512k". Returns false on empty
 * input, a malformed number, an unknown suffix, or overflow.
 */
bool parseScaledU64(const std::string &text, std::uint64_t &out);

/** Parse "0/1/false/true/off/on" into @p out; false otherwise. */
bool parseBoolWord(const std::string &text, bool &out);

/** Sectioned key/value parameter dump (cf. paper Table 1). */
class ParamTable
{
  public:
    /** Start a new section header ("Processor core", "SDRAM", ...). */
    void section(const std::string &title);

    /** Add one parameter line to the current section. */
    template <typename T>
    void
    add(const std::string &key, const T &value)
    {
        std::ostringstream os;
        os << value;
        _rows.push_back({false, key, os.str()});
    }

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    struct Row
    {
        bool is_section;
        std::string key;
        std::string value;
    };

    std::vector<Row> _rows;
};

} // namespace microlib

#endif // MICROLIB_SIM_CONFIG_HH
