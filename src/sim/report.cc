#include "sim/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace microlib
{

void
Table::header(std::vector<std::string> cols)
{
    _header = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!_header.empty() && cells.size() != _header.size())
        panic("table '", _title, "': row width ", cells.size(),
              " != header width ", _header.size());
    _rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::rowNumeric(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(num(v, precision));
    row(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(_header);
    for (const auto &r : _rows)
        grow(r);

    os << "\n== " << _title << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            // Left-align the first (label) column, right-align numbers.
            if (i == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[i])) << cells[i];
        }
        os << "\n";
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : _rows)
        emit(r);
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

Table
crossTable(const std::string &title, const std::string &corner,
           const std::vector<std::string> &rows,
           const std::vector<std::string> &cols,
           const std::vector<std::vector<double>> &cells, int precision)
{
    if (cells.size() != rows.size())
        panic("crossTable '", title, "': ", cells.size(),
              " cell row(s) for ", rows.size(), " label(s)");
    Table t(title);
    std::vector<std::string> header;
    header.push_back(corner);
    header.insert(header.end(), cols.begin(), cols.end());
    t.header(std::move(header));
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (cells[r].size() != cols.size())
            panic("crossTable '", title, "': row ", r, " has ",
                  cells[r].size(), " cell(s) for ", cols.size(),
                  " column(s)");
        t.rowNumeric(rows[r], cells[r], precision);
    }
    return t;
}

void
printExperimentBanner(std::ostream &os, const std::string &id,
                      const std::string &claim)
{
    os << std::string(72, '=') << "\n";
    os << "MicroLib reproduction | " << id << "\n";
    os << "Paper claim: " << claim << "\n";
    os << std::string(72, '=') << "\n";
}

} // namespace microlib
