/**
 * @file
 * ASCII report tables for the benchmark harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper; the
 * Table class renders the rows/series with aligned columns so output
 * can be compared against the published graphs by eye or by script.
 */

#ifndef MICROLIB_SIM_REPORT_HH
#define MICROLIB_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace microlib
{

/** Column-aligned ASCII table with a title line. */
class Table
{
  public:
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row. Fixes the column count. */
    void header(std::vector<std::string> cols);

    /** Append a fully formatted row. Must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: label + numeric cells with fixed precision. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values, int precision = 3);

    void print(std::ostream &os) const;

    /** The rendered table as a string — for callers writing through
     *  a FILE* or comparing reports byte-for-byte. */
    std::string str() const;

    std::size_t rows() const { return _rows.size(); }

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Build a row-label x column-label table of numeric cells: the shape
 * of every cross-variant / cross-mechanism summary. @p corner names
 * the label column; @p cells is indexed [row][col] and must be
 * rectangular with @p rows x @p cols entries.
 */
Table crossTable(const std::string &title, const std::string &corner,
                 const std::vector<std::string> &rows,
                 const std::vector<std::string> &cols,
                 const std::vector<std::vector<double>> &cells,
                 int precision = 3);

/**
 * Banner printed at the top of every bench binary: experiment id,
 * paper reference, and what to look for.
 */
void printExperimentBanner(std::ostream &os, const std::string &id,
                           const std::string &claim);

} // namespace microlib

#endif // MICROLIB_SIM_REPORT_HH
