/**
 * @file
 * Persistent worker pool for the experiment engine.
 *
 * The engine used to spawn and join a fresh std::thread team for
 * every benchmark — thousands of thread creations per full matrix.
 * This pool is created once, lives as long as its owner, and drains
 * whatever jobs are submitted to it; wait() provides the only
 * barrier, and only when the caller asks for one.
 */

#ifndef MICROLIB_SIM_THREAD_POOL_HH
#define MICROLIB_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace microlib
{

/**
 * Fixed-size pool of worker threads draining a FIFO job queue.
 *
 * Jobs must not throw (simulator errors go through fatal()/panic(),
 * which terminate the process). A pool of size 0 is valid: submit()
 * then runs the job inline, so callers never special-case the
 * single-threaded configuration.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** Spawn @p workers threads (0 = run everything inline). */
    explicit ThreadPool(unsigned workers);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; runs it inline when the pool has no workers. */
    void submit(Job job);

    /** Block until every submitted job has finished. */
    void wait();

    /** Number of worker threads (0 = inline mode). */
    unsigned size() const { return static_cast<unsigned>(_workers.size()); }

    /**
     * The process default worker count: MICROLIB_THREADS if set,
     * otherwise std::thread::hardware_concurrency(), never 0.
     */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();

    std::mutex _mu;
    std::condition_variable _work_ready; ///< queue became non-empty
    std::condition_variable _idle;       ///< in-flight count hit zero
    std::deque<Job> _queue;
    std::size_t _in_flight = 0; ///< queued + currently running jobs
    bool _stopping = false;
    std::vector<std::thread> _workers;
};

} // namespace microlib

#endif // MICROLIB_SIM_THREAD_POOL_HH
