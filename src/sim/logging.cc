#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace microlib
{

namespace
{
bool logging_enabled = true;

/** Serializes output: experiment workers log concurrently. */
std::mutex log_mu;
}

void
setLoggingEnabled(bool enabled)
{
    logging_enabled = enabled;
}

namespace detail
{

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mu);
    if (logging_enabled)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mu);
    if (logging_enabled)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace microlib
