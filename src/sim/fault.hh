/**
 * @file
 * Deterministic fault injection for supervised sweep execution.
 *
 * Fault tolerance that is only exercised by real crashes is fault
 * tolerance that is never exercised. The FaultPlan makes every
 * recovery path of the supervised ProcessShardBackend provable on
 * demand: the MICROLIB_FAULT environment variable names exact flat
 * task indices at which a worker process must die or wedge, and the
 * execution backends call FaultInjector::checkpoint(task) immediately
 * before simulating each task, so the failure lands at a precise,
 * reproducible point of the plan.
 *
 * Grammar (clauses joined by ',' or '|'):
 *
 *   MICROLIB_FAULT = clause [ {','|'|'} clause ]...
 *   clause         = ('crash'|'hang') '@' <flat task index> [':' <count>]
 *
 *   crash@7      abort() the first time task 7 is about to run
 *   hang@3:2     spin forever at task 3, for its first 2 encounters
 *   crash@7:99   crash at task 7 on (effectively) every encounter —
 *                the poison-task shape the quarantine logic exists for
 *
 * "First N encounters" is counted across worker restarts when
 * MICROLIB_FAULT_STATE names a state file: every firing appends one
 * line to it (flushed before the fault acts), and a clause whose
 * firing count has reached <count> no longer triggers. The supervised
 * ProcessShardBackend points each worker at a per-shard state file
 * derived from its store path when the variable is unset, so
 * `crash@7:1` means exactly one crash followed by a clean resumed
 * rerun — the recovery proof CI runs. Without a state file (plain
 * in-process runs) counts are per process, so every restarted worker
 * re-fires: the shape the quarantine tests use.
 *
 * The injector is completely inert — not even an env lookup on the
 * task path — unless MICROLIB_FAULT is set, and it never touches
 * results: a task either runs exactly as planned or its process dies
 * before the store sees anything.
 */

#ifndef MICROLIB_SIM_FAULT_HH
#define MICROLIB_SIM_FAULT_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace microlib
{

/** What an armed fault clause does when it fires. */
enum class FaultKind
{
    Crash, ///< abort(): the worker dies by signal
    Hang,  ///< sleep forever: the worker stops heartbeating
};

/** One injection site: kind @ flat task index, for its first N runs. */
struct FaultClause
{
    FaultKind kind = FaultKind::Crash;
    std::size_t task = 0;
    std::size_t count = 1;

    /** Canonical text: "crash@7:2". */
    std::string str() const;
};

/** A parsed MICROLIB_FAULT value. */
struct FaultPlan
{
    std::vector<FaultClause> clauses;

    bool empty() const { return clauses.empty(); }

    /** Parse the grammar above; false + *error on malformed input
     *  (unknown kind, missing '@', non-numeric index/count, zero
     *  count, duplicate task). Empty text parses to an empty plan. */
    static bool parse(const std::string &text, FaultPlan &out,
                      std::string *error = nullptr);
};

/**
 * Process-wide injector. Execution backends arm it once per
 * execute() (armFromEnv — cheap, and re-reading the environment each
 * time keeps long-lived test processes honest when the variable
 * changes between runs), then call checkpoint(task) before each
 * simulated task. checkpoint() may abort the process or never
 * return; it is thread-safe, as backends call it from pool workers.
 */
class FaultInjector
{
  public:
    /** The process-wide instance (inert until armed). */
    static FaultInjector &instance();

    /**
     * (Re)read MICROLIB_FAULT and MICROLIB_FAULT_STATE. A malformed
     * plan is a fatal error — a mistyped injection must never
     * silently run a sweep un-faulted. Re-arming with unchanged text
     * keeps the in-memory firing counts; a changed value resets them.
     */
    void armFromEnv();

    bool armed() const { return !_plan.empty(); }

    /**
     * Fire any clause matching @p task whose firing budget remains:
     * record the firing (state file when configured, else in
     * memory), then crash or hang. Returns normally when nothing
     * matches. Never touches results.
     */
    void checkpoint(std::size_t task);

  private:
    FaultInjector() = default;

    /** Times @p clause has already fired (state file wins). */
    std::size_t firedCount(const FaultClause &clause);

    /** Append one firing line to the state file (flushed + synced);
     *  in-memory count otherwise. */
    void recordFiring(const FaultClause &clause);

    std::mutex _mu;
    std::string _text;       ///< raw MICROLIB_FAULT last armed
    std::string _state_path; ///< MICROLIB_FAULT_STATE ("" = memory)
    FaultPlan _plan;
    std::vector<std::size_t> _fired; ///< per clause, memory mode
};

} // namespace microlib

#endif // MICROLIB_SIM_FAULT_HH
