#include "sim/fault.hh"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "sim/logging.hh"

namespace microlib
{

namespace
{

const char *
kindWord(FaultKind k)
{
    return k == FaultKind::Crash ? "crash" : "hang";
}

/** Parse a full base-10 token; false on junk or empty input. */
bool
parseIndex(const std::string &text, std::size_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

} // namespace

std::string
FaultClause::str() const
{
    std::string out = kindWord(kind);
    out += '@';
    out += std::to_string(task);
    out += ':';
    out += std::to_string(count);
    return out;
}

bool
FaultPlan::parse(const std::string &text, FaultPlan &out,
                 std::string *error)
{
    out.clauses.clear();
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "MICROLIB_FAULT '" + text + "': " + why;
        return false;
    };

    std::vector<std::string> parts;
    std::string cur;
    for (const char c : text) {
        if (c == ',' || c == '|') {
            parts.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    parts.push_back(cur);

    for (const std::string &part : parts) {
        if (part.empty())
            continue;
        FaultClause clause;
        const auto at = part.find('@');
        if (at == std::string::npos)
            return fail("clause '" + part + "' has no '@'");
        const std::string kind = part.substr(0, at);
        if (kind == "crash")
            clause.kind = FaultKind::Crash;
        else if (kind == "hang")
            clause.kind = FaultKind::Hang;
        else
            return fail("unknown kind '" + kind +
                        "' (want crash or hang)");
        std::string rest = part.substr(at + 1);
        const auto colon = rest.find(':');
        if (colon != std::string::npos) {
            if (!parseIndex(rest.substr(colon + 1), clause.count))
                return fail("bad count in '" + part + "'");
            if (clause.count == 0)
                return fail("zero count in '" + part + "'");
            rest = rest.substr(0, colon);
        }
        if (!parseIndex(rest, clause.task))
            return fail("bad task index in '" + part + "'");
        for (const FaultClause &c : out.clauses)
            if (c.task == clause.task)
                return fail("duplicate task " +
                            std::to_string(clause.task));
        out.clauses.push_back(clause);
    }
    return true;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::armFromEnv()
{
    std::lock_guard<std::mutex> lock(_mu);
    const char *env = std::getenv("MICROLIB_FAULT");
    const std::string text = env ? env : "";
    const char *state = std::getenv("MICROLIB_FAULT_STATE");
    _state_path = state ? state : "";
    if (text == _text)
        return; // same plan: keep the in-memory firing counts
    _text = text;
    std::string error;
    if (!FaultPlan::parse(text, _plan, &error))
        fatal(error); // a mistyped injection must never run silently
    _fired.assign(_plan.clauses.size(), 0);
}

std::size_t
FaultInjector::firedCount(const FaultClause &clause)
{
    if (_state_path.empty())
        return 0; // caller combines with the in-memory count
    // Re-read on every (matching) checkpoint: other incarnations of
    // this worker may have appended since we last looked, and a
    // matching checkpoint is rare enough that the read is free.
    std::ifstream in(_state_path);
    std::size_t fired = 0;
    std::string line;
    const std::string want = clause.str();
    while (std::getline(in, line))
        if (line == want)
            ++fired;
    return fired;
}

void
FaultInjector::recordFiring(const FaultClause &clause)
{
    if (_state_path.empty())
        return;
    // O_APPEND + one write(): concurrent workers never tear a line,
    // and fsync lands the firing before the fault acts — a crash
    // must not forget it crashed, or crash@N:1 loops forever.
    const int fd = ::open(_state_path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        warn("fault state: cannot open ", _state_path);
        return;
    }
    const std::string line = clause.str() + "\n";
    if (::write(fd, line.c_str(), line.size()) !=
        static_cast<ssize_t>(line.size()))
        warn("fault state: short write to ", _state_path);
    ::fsync(fd);
    ::close(fd);
}

void
FaultInjector::checkpoint(std::size_t task)
{
    std::unique_lock<std::mutex> lock(_mu);
    for (std::size_t i = 0; i < _plan.clauses.size(); ++i) {
        const FaultClause &clause = _plan.clauses[i];
        if (clause.task != task)
            continue;
        const std::size_t fired = firedCount(clause) + _fired[i];
        if (fired >= clause.count)
            return;
        ++_fired[i];
        recordFiring(clause);
        if (clause.kind == FaultKind::Crash) {
            // Die the way a real bug would: by signal, with no exit
            // handlers — the store sees nothing of this task.
            std::fprintf(stderr, "fault injection: %s firing\n",
                         clause.str().c_str());
            std::fflush(stderr);
            std::abort();
        }
        // Hang: stop making progress but stay alive, exactly the
        // shape heartbeat stall detection exists for. Sleep rather
        // than spin so a CI box full of hung workers stays usable.
        std::fprintf(stderr, "fault injection: %s firing\n",
                     clause.str().c_str());
        std::fflush(stderr);
        lock.unlock();
        for (;;) {
            struct timespec ts = {0, 50 * 1000 * 1000};
            nanosleep(&ts, nullptr);
        }
    }
}

} // namespace microlib
