#include "sim/random.hh"

#include <cmath>

namespace microlib
{

std::uint64_t
Rng::splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection-free multiply-shift; the tiny modulo bias
    // is irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    double u = nextDouble();
    // Inverse CDF of a geometric distribution with support {1, 2, ...}.
    std::uint64_t v = static_cast<std::uint64_t>(
        std::ceil(std::log1p(-u) / std::log1p(-p)));
    return v == 0 ? 1 : v;
}

} // namespace microlib
