/**
 * @file
 * Fundamental simulator types and address arithmetic helpers.
 *
 * All MicroLib components express time in CPU cycles (the 2 GHz core
 * clock of the baseline configuration) and addresses as 64-bit byte
 * addresses. Helper routines centralize the power-of-two arithmetic
 * used throughout the cache and DRAM models.
 */

#ifndef MICROLIB_SIM_TYPES_HH
#define MICROLIB_SIM_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace microlib
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Time in CPU cycles. The simulation never runs long enough to wrap. */
using Cycle = std::uint64_t;

/** 64-bit data word as stored by the functional memory image. */
using Word = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalid_addr = ~Addr(0);

/** Sentinel for "never" / "not scheduled". */
constexpr Cycle never = ~Cycle(0);

/** Return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. Undefined for non powers of two. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Align @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Divide @p n by @p d rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t n, std::uint64_t d)
{
    return (n + d - 1) / d;
}

} // namespace microlib

#endif // MICROLIB_SIM_TYPES_HH
