/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic split.
 *
 * panic()  — an internal invariant was violated: a MicroLib bug.
 *            Aborts so a debugger or core dump can capture state.
 * fatal()  — the user asked for something impossible (bad parameter,
 *            inconsistent configuration). Exits with an error code.
 * warn()   — something is modeled approximately; results are usable.
 * inform() — plain status output.
 */

#ifndef MICROLIB_SIM_LOGGING_HH
#define MICROLIB_SIM_LOGGING_HH

#include <sstream>
#include <string>
#include <utility>

namespace microlib
{

namespace detail
{

/** Concatenate a variadic pack into one string via a stream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on a simulator bug. */
#define panic(...)                                                         \
    ::microlib::detail::panicImpl(::microlib::detail::concat(__VA_ARGS__), \
                                  __FILE__, __LINE__)

/** Exit on a user configuration error. */
#define fatal(...)                                                         \
    ::microlib::detail::fatalImpl(::microlib::detail::concat(__VA_ARGS__), \
                                  __FILE__, __LINE__)

/** Non-fatal modeling warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Enable/disable warn()/inform() output (tests silence it). */
void setLoggingEnabled(bool enabled);

} // namespace microlib

#endif // MICROLIB_SIM_LOGGING_HH
