#include "sim/fingerprint.hh"

namespace microlib
{

std::string
Fingerprint::hexOf(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

bool
Fingerprint::parseHex(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

} // namespace microlib
