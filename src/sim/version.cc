#include "sim/version.hh"

#include <sstream>

#include "core/result_store.hh"
#include "core/sweep_spec.hh"
#include "trace/trace_arena.hh"

namespace microlib
{

const char *
gitDescribe()
{
#ifdef MICROLIB_GIT_DESCRIBE
    return MICROLIB_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string
schemaTuple()
{
    std::ostringstream os;
    os << "store=" << result_store_schema
       << ";arena=" << TraceArena::schema_version
       << ";sweephash=" << sweep_hash_version;
    return os.str();
}

std::string
versionString(const char *tool)
{
    std::ostringstream os;
    os << tool << ' ' << gitDescribe() << " (" << schemaTuple() << ")";
    return os.str();
}

} // namespace microlib
