/**
 * @file
 * Lightweight statistics primitives.
 *
 * Every model component owns a plain struct of these primitives and
 * registers them with a StatSet under hierarchical dotted names
 * ("l1d.misses", "dram.row_hits"). The StatSet is then queried by the
 * experiment engine and dumped by the benchmark harnesses.
 */

#ifndef MICROLIB_SIM_STATS_HH
#define MICROLIB_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace microlib
{

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** Running average (sum / count). */
class Average
{
  public:
    void sample(double v) { _sum += v; ++_count; }
    void reset() { _sum = 0.0; _count = 0; }

    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Fixed-bucket histogram over [0, bucket_width * buckets); values past
 * the end accumulate in the overflow bucket.
 */
class Distribution
{
  public:
    Distribution(double bucket_width = 1.0, std::size_t buckets = 16);

    void sample(double v);
    void reset();

    std::uint64_t total() const { return _total; }
    double mean() const { return _total ? _sum / _total : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return _counts.at(i); }
    std::uint64_t overflow() const { return _overflow; }
    std::size_t buckets() const { return _counts.size(); }
    double bucketWidth() const { return _width; }

  private:
    double _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
    double _sum = 0.0;
};

/**
 * Name → value registry. Components register their counters once;
 * values are read through the registered pointers at query time, so no
 * per-event registry cost is paid. Hash-indexed with capacity
 * reserved up front: a baseline hierarchy registers a few dozen
 * stats, and lookups sit on the per-run report path.
 */
class StatSet
{
  public:
    StatSet();

    void registerCounter(const std::string &name, const Counter *c);
    void registerAverage(const std::string &name, const Average *a);

    /** Value of a registered stat; averages report their mean. */
    double get(const std::string &name) const;

    /** True iff @p name was registered. */
    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Copy every registered stat's current value into @p out in one
     * registry walk. The report path uses this instead of names()
     * followed by per-name get() calls, which rebuilt and sorted the
     * name list and then paid one lookup per stat.
     */
    void snapshot(std::map<std::string, double> &out) const;

    /** Dump "name = value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::unordered_map<std::string, const Counter *> _counters;
    std::unordered_map<std::string, const Average *> _averages;
};

} // namespace microlib

#endif // MICROLIB_SIM_STATS_HH
