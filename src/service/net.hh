/**
 * @file
 * Minimal stream-socket plumbing for the sweep service.
 *
 * One address syntax everywhere (daemon --listen, worker/client
 * --service):
 *
 *   unix:/path/to/socket    AF_UNIX stream socket (same host — the
 *                           default deployment: daemon + workers
 *                           sharing a filesystem for store merges)
 *   host:port               TCP (workers on other hosts; the store
 *                           paths they advertise must still be
 *                           reachable by the daemon, e.g. shared fs)
 *
 * listenOn()/connectTo() return plain fds — the daemon's poll loop
 * wants raw descriptors, not an abstraction. LineSocket is the
 * blocking request/reply convenience for clients and workers: send a
 * line, read a line, with the same whole-lines-only reassembly as
 * ProgressStreamFollower (a recv can return any byte split). All
 * callers must ignoreSigpipe() once: a peer hanging up mid-write
 * must surface as an error return, not SIGPIPE death.
 */

#ifndef MICROLIB_SERVICE_NET_HH
#define MICROLIB_SERVICE_NET_HH

#include <string>

namespace microlib
{

/** Process-wide SIG_IGN for SIGPIPE; call once from main()/loop
 *  entry. Idempotent. */
void ignoreSigpipe();

/** Whether @p addr uses the unix: scheme. */
bool isUnixAddr(const std::string &addr);

/**
 * Bind and listen on @p addr. A unix: path is unlinked first (a
 * previous daemon's stale socket, not a live one — deployments
 * serialize daemons per socket path). Returns the listening fd, or
 * -1 with *error set.
 */
int listenOn(const std::string &addr, std::string *error);

/** Connect to @p addr; the fd, or -1 with *error set. */
int connectTo(const std::string &addr, std::string *error);

/**
 * The bound address of listening fd @p fd in the same syntax
 * accepted by connectTo — most usefully resolving a `host:0`
 * ephemeral TCP port to the real one (tests bind port 0).
 */
std::string boundAddr(int fd, const std::string &requested);

/**
 * Blocking line-oriented view of a connected stream socket; owns
 * and closes the fd. sendLine appends the newline; recvLine strips
 * it. Both return false on EOF or error — the connection is then
 * dead (lost() stays true).
 */
class LineSocket
{
  public:
    LineSocket() = default;
    explicit LineSocket(int fd) : _fd(fd) {}
    ~LineSocket() { close(); }

    LineSocket(const LineSocket &) = delete;
    LineSocket &operator=(const LineSocket &) = delete;

    int fd() const { return _fd; }
    bool lost() const { return _fd < 0; }

    bool sendLine(const std::string &line);
    bool recvLine(std::string &line);

    void close();

  private:
    int _fd = -1;
    std::string _buf; ///< bytes received past the last line
};

} // namespace microlib

#endif // MICROLIB_SERVICE_NET_HH
