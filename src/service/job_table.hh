/**
 * @file
 * ServiceJob/JobTable: microlib_sweepd's unit of deduplicated work.
 *
 * A job is one submitted sweep, keyed by the 16-hex FNV hash of its
 * canonical `.sweep` text (SweepSpec::hash) — the same hash on every
 * host, so two clients submitting the same experiment NAME the same
 * job. Dedup happens at two grains:
 *
 *  - whole-sweep: a submit whose hash matches a live or completed
 *    job attaches to it (dedup "job") — at most one execution per
 *    spec, however many clients ask;
 *  - per-task: a new job's plan is prefilled from the daemon's
 *    global result store before anything queues (dedup counted in
 *    `prefilled`), so tasks any previous job — or any merged
 *    offline sweep — already ran are never re-queued. A submit
 *    whose every task prefills completes instantly.
 *
 * The table evicts the oldest *completed* jobs over a cap (their
 * records stay in the store — eviction loses only the job handle;
 * a resubmit rebuilds it at prefill cost). Running jobs are never
 * evicted.
 */

#ifndef MICROLIB_SERVICE_JOB_TABLE_HH
#define MICROLIB_SERVICE_JOB_TABLE_HH

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/lease.hh"
#include "core/supervisor.hh"
#include "core/sweep_spec.hh"
#include "core/task_plan.hh"

namespace microlib
{

class ResultStore;

/** One submitted sweep and its scheduling state. */
struct ServiceJob
{
    std::string id;        ///< 16-hex SweepSpec::hash
    std::string spec_text; ///< canonical `.sweep` text
    TaskPlan plan;
    std::vector<char> done; ///< per-task: record known to the store
    SweepResult res;        ///< prefill target (slots; not served)
    LeaseQueue queue;
    SweepSupervisor supervisor;
    std::size_t prefilled = 0; ///< tasks deduped from the store
    std::size_t executed = 0;  ///< records merged from workers
    bool completed = false;

    ServiceJob(const SweepSpec &spec, const SupervisionPolicy &policy);

    std::size_t total() const { return plan.size(); }
    std::size_t filled() const { return prefilled + executed; }

    /** Exit code a client of this job should report once done:
     *  exit_ok, or exit_quarantined if any cell was excluded. */
    int exitCode() const;
};

/** The daemon's job registry; owns every job. */
class JobTable
{
  public:
    explicit JobTable(std::size_t max_done_jobs = 64)
        : _max_done(max_done_jobs)
    {
    }

    /** Outcome of submit(): the job plus how dedup resolved it. */
    struct Submission
    {
        ServiceJob *job = nullptr;
        bool deduped = false; ///< attached to an existing job
    };

    /**
     * Register @p spec: return the existing job with the same hash,
     * or create one — plan built, slots prefilled from @p store,
     * queue loaded with the still-missing tasks (a fully-prefilled
     * job is born completed). Never runs anything.
     */
    Submission submit(const SweepSpec &spec, ResultStore &store,
                      const SupervisionPolicy &policy);

    /** The job named @p id, or nullptr. */
    ServiceJob *find(const std::string &id);

    /** Drop the job named @p id (a read-only daemon refusing an
     *  unexecutable submit). No-op if absent. */
    void erase(const std::string &id);

    /** Oldest running job with pending (leasable) tasks, or nullptr
     *  — the lease source; oldest-first keeps job latency fair. */
    ServiceJob *nextLeasable();

    /** Mark completed jobs done and evict the oldest completed ones
     *  beyond the cap. Call after any state change. */
    void sweepCompleted();

    std::size_t size() const { return _jobs.size(); }

    /** Job ids in submission order (status listing). */
    std::vector<std::string> ids() const { return {_order.begin(),
                                                   _order.end()}; }

  private:
    std::size_t _max_done;
    std::map<std::string, std::unique_ptr<ServiceJob>> _jobs;
    std::deque<std::string> _order; ///< submission order (eviction)
};

/** 16-hex job id of @p spec (zero-padded SweepSpec::hash). */
std::string jobIdOf(const SweepSpec &spec);

} // namespace microlib

#endif // MICROLIB_SERVICE_JOB_TABLE_HH
