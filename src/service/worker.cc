#include "service/worker.hh"

#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "core/exit_codes.hh"
#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/scheduler.hh"
#include "core/task_plan.hh"
#include "core/thread_pool_backend.hh"
#include "service/net.hh"
#include "service/protocol.hh"
#include "sim/logging.hh"
#include "sim/version.hh"

namespace microlib
{

namespace
{

std::string
defaultName()
{
    char host[256] = "worker";
    ::gethostname(host, sizeof(host) - 1);
    return std::string(host) + ":" + std::to_string(::getpid());
}

/** One request/reply exchange; false when the connection is gone. */
bool
exchange(LineSocket &sock, const std::string &request,
         std::string &reply)
{
    return sock.sendLine(request) && sock.recvLine(reply);
}

} // namespace

int
runWorkerLoop(const WorkerOptions &wopts)
{
    ignoreSigpipe();

    std::string error;
    const int fd = connectTo(wopts.service, &error);
    if (fd < 0) {
        warn("worker: cannot reach daemon at ", wopts.service, ": ",
             error);
        return exit_infrastructure;
    }
    LineSocket sock(fd);

    const std::string name =
        wopts.name.empty() ? defaultName() : wopts.name;
    std::string store_path = wopts.store_path;
    if (store_path.empty())
        store_path = "microlib_worker_" +
                     std::to_string(::getpid()) + ".store";
    // The daemon merges this file by path, so it must mean the same
    // file over there: absolutize against our cwd.
    if (!store_path.empty() && store_path[0] != '/') {
        char cwd[4096];
        if (::getcwd(cwd, sizeof(cwd)))
            store_path = std::string(cwd) + "/" + store_path;
    }

    std::string reply;
    if (!exchange(sock,
                  ProtocolMsg("cmd", "hello")
                      .field("name", name)
                      .field("schema", schemaTuple())
                      .field("store", store_path)
                      .str(),
                  reply)) {
        warn("worker: daemon hung up during hello");
        return exit_infrastructure;
    }
    std::uint64_t ok = 0;
    if (!jsonFindU64(reply, "ok", ok) || ok != 1) {
        std::string why;
        jsonFindString(reply, "error", why);
        warn("worker: daemon refused hello: ", why);
        return exit_infrastructure;
    }

    // One engine across every lease: traces stay materialized, the
    // thread pool stays warm. The store is this worker's private
    // append-only file; the daemon merges it, never writes it.
    ResultStore store(store_path);
    EngineOptions opts;
    opts.threads = wopts.threads;
    opts.verbose = wopts.verbose;
    opts.keep_traces = true;
    opts.trace_dir = wopts.trace_dir;
    opts.trace_budget_bytes = wopts.trace_budget_bytes;
    opts.store = &store;
    ExperimentEngine engine(opts);
    // Progress sinks to the daemon socket: the same JSONL events a
    // file stream would carry, heartbeats included — the daemon's
    // liveness and blame evidence.
    ProgressWriter progress(sock.fd());
    const ExecutionContext ctx{engine, opts, &progress};

    std::map<std::string, std::unique_ptr<TaskPlan>> plans;
    inform("worker ", name, ": attached to ", wopts.service,
           " (store ", store_path, ")");

    for (;;) {
        if (!exchange(sock, ProtocolMsg("cmd", "lease").str(),
                      reply)) {
            // The daemon closing the socket between leases is the
            // normal end of service (shutdown after drain).
            inform("worker ", name, ": daemon closed; exiting");
            return exit_ok;
        }
        std::vector<std::size_t> tasks;
        if (!jsonFindArray(reply, "tasks", tasks)) {
            warn("worker: malformed lease reply");
            return exit_infrastructure;
        }
        if (tasks.empty()) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                wopts.idle_poll_s));
            continue;
        }
        std::string job_id;
        if (!jsonFindString(reply, "job", job_id)) {
            warn("worker: lease reply names no job");
            return exit_infrastructure;
        }
        auto plan_it = plans.find(job_id);
        if (plan_it == plans.end()) {
            std::string spec_text;
            SweepSpec spec;
            if (!jsonFindString(reply, "spec", spec_text) ||
                !SweepSpec::parse(spec_text, spec, &error)) {
                warn("worker: bad spec in lease reply: ", error);
                return exit_infrastructure;
            }
            plan_it = plans
                          .emplace(job_id,
                                   std::make_unique<TaskPlan>(spec))
                          .first;
        }
        const TaskPlan &plan = *plan_it->second;

        // Execute exactly the leased tasks: everything else is
        // "done" as far as this lease is concerned. Records this
        // worker already holds (a requeued task it ran before a
        // crash elsewhere) resume from its own store instead of
        // re-simulating.
        SweepResult res = plan.emptyResult();
        std::vector<char> done(plan.size(), 1);
        for (const std::size_t t : tasks)
            if (t < done.size())
                done[t] = 0;
        RunCounters counters;
        counters.resumed = plan.prefill(store, res, done);

        ProtocolMsg complete("cmd", "complete");
        complete.field("job", job_id).field("tasks", tasks);
        try {
            ThreadPoolBackend leaf;
            leaf.execute(plan, done, ctx, res, counters);
            complete.field("ok", std::uint64_t{1});
        } catch (const std::exception &e) {
            // The lease failed (poison task, trace failure): report
            // and keep serving — the daemon strikes the blamed task
            // and requeues the rest.
            warn("worker ", name, ": lease failed: ", e.what());
            complete.field("ok", std::uint64_t{0})
                .field("error", e.what());
        }
        if (!exchange(sock, complete.str(), reply)) {
            warn("worker: daemon hung up mid-lease");
            return exit_infrastructure;
        }
    }
}

} // namespace microlib
