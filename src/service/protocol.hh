/**
 * @file
 * The microlib_sweepd wire protocol: newline-delimited JSON objects.
 *
 * Every message on a service connection is one complete JSON object
 * on one line, distinguished by its first key:
 *
 *   {"cmd":...}    a request (client or worker -> daemon)
 *   {"reply":...}  the daemon's response to the previous request
 *   {"event":...}  a progress line (core/progress.hh) a worker
 *                  relays verbatim while executing a lease
 *
 * The full grammar lives in docs/SWEEP_SERVICE.md. This header is
 * NOT a JSON library: it is exactly the subset the protocol needs —
 * flat objects whose values are strings, unsigned integers, or
 * arrays of unsigned integers — built and read with the same
 * escaping rules as the progress stream (ProgressEvent::escape), so
 * a relayed progress line and a protocol line never disagree about
 * what a byte means. Messages are extracted by key, not position:
 * readers ignore keys they do not know, so the protocol is
 * forward-extensible without a version dance (the schema tuple in
 * the worker hello covers the parts that must match exactly).
 */

#ifndef MICROLIB_SERVICE_PROTOCOL_HH
#define MICROLIB_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace microlib
{

/**
 * Builder for one protocol line: {"<kind>":"<name>", fields...}.
 * The service sibling of ProgressEvent with a caller-chosen leading
 * key — "cmd" for requests, "reply" for responses.
 */
class ProtocolMsg
{
  public:
    ProtocolMsg(const char *kind, const std::string &name);

    ProtocolMsg &field(const char *key, const std::string &value);
    ProtocolMsg &field(const char *key, const char *value);
    ProtocolMsg &field(const char *key, std::uint64_t value);
    /** "key":[1,2,3] — task-index lists. */
    ProtocolMsg &field(const char *key,
                       const std::vector<std::size_t> &values);

    /** The complete JSON object, closing brace included, no
     *  newline. */
    std::string str() const;

  private:
    std::ostringstream _os;
};

/** Whether @p line's first key is @p key ("cmd", "reply", "event")
 *  and, if so, its string value in @p out. */
bool protocolKind(const std::string &line, const std::string &key,
                  std::string &out);

/** Extract the string value of "key":"..." from @p line, unescaping
 *  \" \\ and \uXXXX control escapes; false if absent or malformed. */
bool jsonFindString(const std::string &line, const std::string &key,
                    std::string &out);

/** Extract the unsigned value of "key":<digits>; false if absent. */
bool jsonFindU64(const std::string &line, const std::string &key,
                 std::uint64_t &out);

/** Extract "key":[<digits>,...] into @p out; false if absent or
 *  malformed (an empty array is success). */
bool jsonFindArray(const std::string &line, const std::string &key,
                   std::vector<std::size_t> &out);

} // namespace microlib

#endif // MICROLIB_SERVICE_PROTOCOL_HH
