#include "service/protocol.hh"

#include <cstdlib>

#include "core/progress.hh"

namespace microlib
{

namespace
{

/** Locate the value start of `"key":` in @p line, or npos. Safe
 *  against keys occurring inside string values: every interior quote
 *  of a well-formed value is escaped (\"), so the raw byte sequence
 *  `"key":` can only open a real field. */
std::size_t
valueStart(const std::string &line, const std::string &key)
{
    const std::string token = "\"" + key + "\":";
    const auto at = line.find(token);
    if (at == std::string::npos)
        return std::string::npos;
    return at + token.size();
}

/** Unescape one JSON string body starting at @p at (just past the
 *  opening quote); false on a malformed escape or a missing closing
 *  quote. */
bool
unescapeFrom(const std::string &line, std::size_t at, std::string &out)
{
    out.clear();
    while (at < line.size()) {
        const char c = line[at];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            ++at;
            continue;
        }
        if (at + 1 >= line.size())
            return false;
        const char esc = line[at + 1];
        switch (esc) {
          case '"':
            out += '"';
            at += 2;
            break;
          case '\\':
            out += '\\';
            at += 2;
            break;
          case '/':
            out += '/';
            at += 2;
            break;
          case 'n':
            out += '\n';
            at += 2;
            break;
          case 't':
            out += '\t';
            at += 2;
            break;
          case 'r':
            out += '\r';
            at += 2;
            break;
          case 'u': {
            if (at + 6 > line.size())
                return false;
            const std::string hex = line.substr(at + 2, 4);
            char *end = nullptr;
            const unsigned long v = std::strtoul(hex.c_str(), &end, 16);
            if (!end || *end != '\0' || v > 0xff)
                return false; // escape() only emits \u00xx controls
            out += static_cast<char>(v);
            at += 6;
            break;
          }
          default:
            return false;
        }
    }
    return false; // no closing quote
}

} // namespace

ProtocolMsg::ProtocolMsg(const char *kind, const std::string &name)
{
    _os << "{\"" << kind << "\":\"" << ProgressEvent::escape(name)
        << '"';
}

ProtocolMsg &
ProtocolMsg::field(const char *key, const std::string &value)
{
    _os << ",\"" << key << "\":\"" << ProgressEvent::escape(value)
        << '"';
    return *this;
}

ProtocolMsg &
ProtocolMsg::field(const char *key, const char *value)
{
    return field(key, std::string(value));
}

ProtocolMsg &
ProtocolMsg::field(const char *key, std::uint64_t value)
{
    _os << ",\"" << key << "\":" << value;
    return *this;
}

ProtocolMsg &
ProtocolMsg::field(const char *key,
                   const std::vector<std::size_t> &values)
{
    _os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            _os << ',';
        _os << values[i];
    }
    _os << ']';
    return *this;
}

std::string
ProtocolMsg::str() const
{
    return _os.str() + "}";
}

bool
protocolKind(const std::string &line, const std::string &key,
             std::string &out)
{
    // The first key must BE @p key: a relayed progress line contains
    // "event" first, and must not be mistaken for a request even if
    // a later field were named "cmd".
    const std::string prefix = "{\"" + key + "\":\"";
    if (line.rfind(prefix, 0) != 0)
        return false;
    return unescapeFrom(line, prefix.size(), out);
}

bool
jsonFindString(const std::string &line, const std::string &key,
               std::string &out)
{
    const auto at = valueStart(line, key);
    if (at == std::string::npos || at >= line.size() ||
        line[at] != '"')
        return false;
    return unescapeFrom(line, at + 1, out);
}

bool
jsonFindU64(const std::string &line, const std::string &key,
            std::uint64_t &out)
{
    const auto at = valueStart(line, key);
    if (at == std::string::npos || at >= line.size())
        return false;
    const char *digits = line.c_str() + at;
    char *end = nullptr;
    out = std::strtoull(digits, &end, 10);
    return end != digits;
}

bool
jsonFindArray(const std::string &line, const std::string &key,
              std::vector<std::size_t> &out)
{
    out.clear();
    auto at = valueStart(line, key);
    if (at == std::string::npos || at >= line.size() ||
        line[at] != '[')
        return false;
    ++at;
    if (at < line.size() && line[at] == ']')
        return true; // empty array
    for (;;) {
        const char *digits = line.c_str() + at;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(digits, &end, 10);
        if (end == digits)
            return false;
        out.push_back(static_cast<std::size_t>(v));
        at += static_cast<std::size_t>(end - digits);
        if (at >= line.size())
            return false; // unterminated array
        if (line[at] == ']')
            return true;
        if (line[at] != ',')
            return false;
        ++at;
    }
}

} // namespace microlib
