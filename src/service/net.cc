#include "service/net.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace microlib
{

namespace
{

constexpr const char *unix_scheme = "unix:";

bool
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
    return false;
}

/** Split "host:port" at the LAST colon (IPv6-literal friendly). */
bool
splitHostPort(const std::string &addr, std::string &host,
              std::string &port)
{
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= addr.size())
        return false;
    host = addr.substr(0, colon);
    port = addr.substr(colon + 1);
    return true;
}

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return -1;
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // stale socket from a previous daemon
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, "socket");
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) < 0 ||
        ::listen(fd, 64) < 0) {
        setError(error, "bind/listen " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return -1;
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, "socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) < 0) {
        setError(error, "connect " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
tcpSocket(const std::string &addr, bool listening, std::string *error)
{
    std::string host, port;
    if (!splitHostPort(addr, host, port)) {
        if (error)
            *error = "bad address '" + addr +
                     "' (want unix:/path or host:port)";
        return -1;
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (listening)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &res);
    if (rc != 0) {
        if (error)
            *error = "resolve " + addr + ": " + gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (listening) {
            const int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
                ::listen(fd, 64) == 0)
                break;
        } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        setError(error, (listening ? "listen " : "connect ") + addr);
    return fd;
}

} // namespace

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

bool
isUnixAddr(const std::string &addr)
{
    return addr.rfind(unix_scheme, 0) == 0;
}

int
listenOn(const std::string &addr, std::string *error)
{
    if (isUnixAddr(addr))
        return listenUnix(addr.substr(std::strlen(unix_scheme)),
                          error);
    return tcpSocket(addr, true, error);
}

int
connectTo(const std::string &addr, std::string *error)
{
    if (isUnixAddr(addr))
        return connectUnix(addr.substr(std::strlen(unix_scheme)),
                           error);
    return tcpSocket(addr, false, error);
}

std::string
boundAddr(int fd, const std::string &requested)
{
    if (isUnixAddr(requested))
        return requested;
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss), &len) != 0)
        return requested;
    char host[NI_MAXHOST];
    char port[NI_MAXSERV];
    if (::getnameinfo(reinterpret_cast<sockaddr *>(&ss), len, host,
                      sizeof(host), port, sizeof(port),
                      NI_NUMERICHOST | NI_NUMERICSERV) != 0)
        return requested;
    std::string h(host);
    if (h.find(':') != std::string::npos)
        h = "[" + h + "]"; // IPv6 literal... (informational only)
    return h + ":" + port;
}

bool
LineSocket::sendLine(const std::string &line)
{
    if (_fd < 0)
        return false;
    const std::string out = line + '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(_fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineSocket::recvLine(std::string &line)
{
    if (_fd < 0)
        return false;
    for (;;) {
        const auto nl = _buf.find('\n');
        if (nl != std::string::npos) {
            line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::read(_fd, chunk, sizeof(chunk));
        if (n == 0) {
            close(); // EOF: peer finished; a torn tail is dropped
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        _buf.append(chunk, static_cast<std::size_t>(n));
    }
}

void
LineSocket::close()
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
}

} // namespace microlib
