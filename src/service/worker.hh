/**
 * @file
 * The pull-based sweep worker: `microlib_sweep --worker <addr>`.
 *
 * A worker is a long-running simulation process that attaches to a
 * microlib_sweepd daemon and drains it: hello (schema handshake),
 * then lease -> execute -> complete until the daemon hangs up. Each
 * lease is a handful of plan-order task indices of one job; the
 * worker rebuilds the job's TaskPlan from the canonical spec text in
 * the lease reply (the TaskPlan determinism contract makes its
 * indices mean exactly what the daemon's do), executes the leased
 * tasks with the ordinary ThreadPoolBackend, and appends every
 * result to its OWN store file — the daemon merges that file on
 * completion (and on the worker's death: whatever was flushed is
 * salvaged).
 *
 * While executing, the worker's ProgressWriter streams the standard
 * JSONL events over the daemon socket itself (the fd sink): the
 * daemon relays them into its progress file and uses the heartbeats
 * as blame evidence, exactly as the process-shard supervisor tails
 * per-shard files. One ExperimentEngine lives across all leases, so
 * traces (and the shared trace arena, if MICROLIB_TRACE_DIR is set)
 * stay warm from lease to lease.
 */

#ifndef MICROLIB_SERVICE_WORKER_HH
#define MICROLIB_SERVICE_WORKER_HH

#include <cstddef>
#include <string>

namespace microlib
{

/** Worker knobs (`microlib_sweep --worker` flags map onto these). */
struct WorkerOptions
{
    std::string service;    ///< daemon address (required)
    std::string store_path; ///< own store; "" = derived from pid
    std::string name;       ///< display name; "" = host:pid
    unsigned threads = 0;   ///< simulation threads (0 = default)
    bool verbose = false;
    std::string trace_dir;  ///< trace arena (shared with siblings)
    std::size_t trace_budget_bytes = 0;
    double idle_poll_s = 0.2; ///< sleep between empty leases
};

/**
 * Run the worker loop until the daemon hangs up. Returns a process
 * exit code: exit_ok on a clean daemon shutdown, exit_infrastructure
 * when the daemon is unreachable, rejects the hello (schema
 * mismatch), or vanishes mid-lease.
 */
int runWorkerLoop(const WorkerOptions &opts);

} // namespace microlib

#endif // MICROLIB_SERVICE_WORKER_HH
