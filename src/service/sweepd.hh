/**
 * @file
 * SweepService: the microlib_sweepd daemon core.
 *
 * A single-threaded poll(2) event loop over one listening socket
 * (unix:/path or host:port — service/net.hh) speaking the JSONL
 * protocol of service/protocol.hh. Everything the daemon knows is
 * composed from pieces that already existed and are unit-tested in
 * isolation:
 *
 *  - JobTable (service/job_table.hh): sweep-level and task-level
 *    dedup against the daemon's global ResultStore;
 *  - LeaseQueue (core/lease.hh): pull scheduling — workers ask,
 *    the daemon never pushes;
 *  - ProgressStreamFollower (core/supervisor.hh): per-connection
 *    JSONL reassembly; worker `event` lines relay into the daemon's
 *    own progress stream and their heartbeats become blame evidence;
 *  - SweepSupervisor (core/supervisor.hh): the PR-7 strike /
 *    quarantine policy, applied per job when a worker dies, stalls
 *    (no bytes for heartbeat_timeout while holding a lease) or
 *    completes a lease without producing a task's record.
 *
 * Single-threaded on purpose: every transition — lease, merge,
 * requeue, quarantine, eviction — is serialized by the loop, so the
 * daemon needs no locks and its state can never tear. Simulation
 * happens in workers; the daemon only moves lines and merges store
 * files, so one thread is plenty for the target scale (tens of
 * workers). Blocking replies to slow clients are accepted for the
 * same reason (documented in docs/SWEEP_SERVICE.md).
 *
 * The class is embeddable (tests run it on a thread and stop it with
 * requestStop()); tools/microlib_sweepd/main.cc is the thin CLI
 * wrapper that adds flags and signal handling.
 */

#ifndef MICROLIB_SERVICE_SWEEPD_HH
#define MICROLIB_SERVICE_SWEEPD_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "core/progress.hh"
#include "core/result_store.hh"
#include "core/supervisor.hh"
#include "service/job_table.hh"

namespace microlib
{

/** Daemon knobs (tools/microlib_sweepd flags map 1:1). */
struct SweepServiceOptions
{
    std::string listen;        ///< unix:/path or host:port
    std::string store_path;    ///< global result store (required)
    std::string progress_path; ///< daemon JSONL stream; "" = off

    /** Tasks per lease. Small keeps requeue loss on a worker death
     *  small; plan-order contiguity keeps trace sharing. */
    std::size_t lease_size = 4;

    /** Seconds without bytes from a lease-holding worker before it
     *  is declared stalled and cut; <= 0 disables (death detection
     *  via EOF still applies). */
    double heartbeat_timeout = 0.0;

    /** PR-7 strike policy (core/supervisor.hh). */
    std::size_t quarantine_strikes = 3;
    std::size_t max_worker_retries = 2;

    /** Serve cached results only: the store opens ReadOnly, submits
     *  needing execution are refused, workers are refused. */
    bool read_only = false;

    /** Completed jobs kept before oldest-first eviction. */
    std::size_t max_done_jobs = 64;
};

/** The daemon: construct, start(), run() until requestStop(). */
class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions opts);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Open the store and the listening socket. False + *error on
     *  failure (the caller exits exit_infrastructure). */
    bool start(std::string *error);

    /** The resolved listen address (host:0 -> the real port);
     *  valid after start(). */
    const std::string &address() const { return _address; }

    /** Event loop; returns the process exit code. Runs until
     *  requestStop() or a shutdown command. */
    int run();

    /** Stop the loop from another thread or a signal handler. */
    void requestStop() { _stop.store(true); }

  private:
    struct Conn
    {
        int fd = -1;
        std::size_t id = 0;           ///< stable per-connection
        ProgressStreamFollower stream; ///< line reassembly + blame
        bool is_worker = false;        ///< sent a hello
        std::string name;              ///< worker display name
        std::string store_path;        ///< worker's store (hello)
        std::string job_id;            ///< job of the current lease
        std::size_t lease_count = 0;   ///< tasks currently held
        std::chrono::steady_clock::time_point last_activity;
        bool dead = false;             ///< reap after this loop turn
    };

    std::string ownerKey(const Conn &c) const;

    void acceptNew();
    void handleLine(Conn &c, const std::string &line);
    void cmdSubmit(Conn &c, const std::string &line);
    void cmdStatus(Conn &c, const std::string &line);
    void cmdResult(Conn &c, const std::string &line);
    void cmdWorkers(Conn &c);
    void cmdHello(Conn &c, const std::string &line);
    void cmdLease(Conn &c);
    void cmdComplete(Conn &c, const std::string &line);

    /** Merge @p c's store and absorb new records into @p job:
     *  prefill, count executed, drop finished tasks from the
     *  queue. */
    void absorbWorkerStore(Conn &c, ServiceJob &job);

    /** A lease-holding worker died/stalled/failed: merge what it
     *  flushed, requeue the rest, strike the blamed task. */
    void workerFailed(Conn &c, bool stalled,
                      const std::string &detail);

    void statusReply(Conn &c, ServiceJob &job);
    bool send(Conn &c, const std::string &line);
    void progress(const ProgressEvent &ev);

    SweepServiceOptions _opts;
    SupervisionPolicy _policy;
    std::unique_ptr<ResultStore> _store;
    std::unique_ptr<ProgressWriter> _progress;
    JobTable _jobs;
    std::list<Conn> _conns;
    int _listen_fd = -1;
    std::string _address;
    std::size_t _next_conn_id = 0;
    std::atomic<bool> _stop{false};
};

} // namespace microlib

#endif // MICROLIB_SERVICE_SWEEPD_HH
