#include "service/sweepd.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/exit_codes.hh"
#include "service/net.hh"
#include "service/protocol.hh"
#include "sim/logging.hh"
#include "sim/version.hh"

namespace microlib
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point then, Clock::time_point now)
{
    return std::chrono::duration<double>(now - then).count();
}

std::string
errReply(const std::string &cmd, const std::string &error)
{
    return ProtocolMsg("reply", cmd)
        .field("ok", std::uint64_t{0})
        .field("error", error)
        .str();
}

} // namespace

SweepService::SweepService(SweepServiceOptions opts)
    : _opts(std::move(opts)), _jobs(_opts.max_done_jobs)
{
    _policy.heartbeat_timeout = _opts.heartbeat_timeout;
    _policy.quarantine_strikes = _opts.quarantine_strikes;
    _policy.max_worker_retries = _opts.max_worker_retries;
}

SweepService::~SweepService()
{
    for (Conn &c : _conns)
        if (c.fd >= 0)
            ::close(c.fd);
    if (_listen_fd >= 0)
        ::close(_listen_fd);
    if (isUnixAddr(_opts.listen))
        ::unlink(_opts.listen.substr(5).c_str());
}

bool
SweepService::start(std::string *error)
{
    ignoreSigpipe();
    if (_opts.store_path.empty()) {
        if (error)
            *error = "a --store path is required";
        return false;
    }
    _store = std::make_unique<ResultStore>(
        _opts.store_path, _opts.read_only
                              ? ResultStore::Mode::ReadOnly
                              : ResultStore::Mode::ReadWrite);
    _progress = std::make_unique<ProgressWriter>(_opts.progress_path);
    _listen_fd = listenOn(_opts.listen, error);
    if (_listen_fd < 0)
        return false;
    _address = boundAddr(_listen_fd, _opts.listen);
    return true;
}

void
SweepService::progress(const ProgressEvent &ev)
{
    if (_progress)
        _progress->write(ev);
}

bool
SweepService::send(Conn &c, const std::string &line)
{
    if (c.fd < 0 || c.dead)
        return false;
    const std::string out = line + '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(c.fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // Peer hung up mid-reply: treat exactly like an EOF on
            // the read side at the next loop turn.
            c.dead = true;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
SweepService::ownerKey(const Conn &c) const
{
    // The connection id, not the advertised name: two connections
    // claiming one name (a restarted worker) must never alias each
    // other's leases.
    return "conn" + std::to_string(c.id);
}

void
SweepService::acceptNew()
{
    const int fd = ::accept(_listen_fd, nullptr, nullptr);
    if (fd < 0)
        return;
    Conn c;
    c.fd = fd;
    c.id = _next_conn_id++;
    c.last_activity = Clock::now();
    _conns.push_back(std::move(c));
}

int
SweepService::run()
{
    progress(ProgressEvent("service")
                 .field("listen", _address)
                 .field("store", _opts.store_path)
                 .field("schema", schemaTuple())
                 .field("read_only",
                        std::uint64_t(_opts.read_only ? 1 : 0)));
    inform("microlib_sweepd: listening on ", _address, " (store ",
           _opts.store_path, _opts.read_only ? ", read-only)" : ")");

    while (!_stop.load()) {
        std::vector<pollfd> fds;
        fds.push_back({_listen_fd, POLLIN, 0});
        for (Conn &c : _conns)
            fds.push_back({c.fd, POLLIN, 0});

        // Short timeout: bounds stall-detection latency and the
        // requestStop() response time.
        const int rc = ::poll(fds.data(), fds.size(), 200);
        if (rc < 0 && errno != EINTR)
            break;

        if (rc > 0 && (fds[0].revents & POLLIN))
            acceptNew();

        std::size_t i = 1;
        for (Conn &c : _conns) {
            if (i >= fds.size())
                break;
            const short rev = fds[i++].revents;
            if (c.dead || !(rev & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const int n = c.stream.feedFd(c.fd);
            if (n > 0) {
                c.last_activity = Clock::now();
                for (const std::string &line : c.stream.takeLines())
                    handleLine(c, line);
            } else if (n == 0 ||
                       (errno != EAGAIN && errno != EINTR)) {
                // EOF (or a hard error): the peer is gone. A worker
                // holding a lease died mid-sweep.
                if (c.is_worker && c.lease_count > 0)
                    workerFailed(c, false, "connection closed");
                else if (c.is_worker)
                    progress(ProgressEvent("worker")
                                 .field("name", c.name)
                                 .field("state", "detach"));
                c.dead = true;
            }
        }

        // Stall scan: a worker that holds a lease but has sent no
        // bytes (heartbeats included) for the timeout is wedged; cut
        // it — its tasks requeue, and if it ever wakes up its late
        // records still merge on its next complete (record-wins).
        if (_opts.heartbeat_timeout > 0) {
            const auto now = Clock::now();
            for (Conn &c : _conns) {
                if (c.dead || !c.is_worker || c.lease_count == 0)
                    continue;
                if (secondsSince(c.last_activity, now) >
                    _opts.heartbeat_timeout) {
                    workerFailed(c, true, "heartbeat timeout");
                    c.dead = true;
                }
            }
        }

        for (auto it = _conns.begin(); it != _conns.end();) {
            if (it->dead) {
                if (it->fd >= 0)
                    ::close(it->fd);
                it = _conns.erase(it);
            } else {
                ++it;
            }
        }
    }

    progress(ProgressEvent("shutdown"));
    inform("microlib_sweepd: shutting down");
    return exit_ok;
}

void
SweepService::handleLine(Conn &c, const std::string &line)
{
    // Worker progress passthrough: relay verbatim into the daemon's
    // stream. The connection's ProgressStreamFollower has already
    // recorded any heartbeat as blame evidence.
    std::string kind;
    if (protocolKind(line, "event", kind)) {
        if (_progress)
            _progress->writeLine(line);
        return;
    }
    if (!protocolKind(line, "cmd", kind)) {
        send(c, errReply("?", "unparseable line"));
        return;
    }
    if (kind == "submit")
        cmdSubmit(c, line);
    else if (kind == "status")
        cmdStatus(c, line);
    else if (kind == "result")
        cmdResult(c, line);
    else if (kind == "workers")
        cmdWorkers(c);
    else if (kind == "hello")
        cmdHello(c, line);
    else if (kind == "lease")
        cmdLease(c);
    else if (kind == "complete")
        cmdComplete(c, line);
    else if (kind == "shutdown") {
        send(c, ProtocolMsg("reply", "shutdown")
                    .field("ok", std::uint64_t{1})
                    .str());
        requestStop();
    } else {
        send(c, errReply(kind, "unknown command"));
    }
}

void
SweepService::cmdSubmit(Conn &c, const std::string &line)
{
    std::string text;
    if (!jsonFindString(line, "spec", text)) {
        send(c, errReply("submit", "missing spec"));
        return;
    }
    SweepSpec spec;
    std::string error;
    if (!SweepSpec::parse(text, spec, &error)) {
        send(c, errReply("submit", "spec: " + error));
        return;
    }
    const bool existed = _jobs.find(jobIdOf(spec)) != nullptr;
    JobTable::Submission sub = _jobs.submit(spec, *_store, _policy);
    ServiceJob &job = *sub.job;
    if (_opts.read_only && !job.completed) {
        // Serve-only deployment: anything needing execution is
        // refused (and not kept — the table must not accrete
        // unservable jobs).
        _jobs.erase(job.id);
        send(c, errReply("submit",
                         "read-only daemon: sweep has unexecuted "
                         "tasks"));
        return;
    }
    const char *dedup = existed ? "job" : "new";
    if (!existed)
        progress(ProgressEvent("job")
                     .field("job", job.id)
                     .field("dedup", dedup)
                     .field("total", std::uint64_t(job.total()))
                     .field("prefilled",
                            std::uint64_t(job.prefilled)));
    send(c, ProtocolMsg("reply", "submit")
                .field("ok", std::uint64_t{1})
                .field("job", job.id)
                .field("dedup", dedup)
                .field("state",
                       job.completed ? "done" : "running")
                .field("total", std::uint64_t(job.total()))
                .field("filled", std::uint64_t(job.filled()))
                .str());
}

void
SweepService::statusReply(Conn &c, ServiceJob &job)
{
    send(c,
         ProtocolMsg("reply", "status")
             .field("ok", std::uint64_t{1})
             .field("job", job.id)
             .field("state", job.completed ? "done" : "running")
             .field("total", std::uint64_t(job.total()))
             .field("filled", std::uint64_t(job.filled()))
             .field("prefilled", std::uint64_t(job.prefilled))
             .field("executed", std::uint64_t(job.executed))
             .field("pending",
                    std::uint64_t(job.queue.pendingCount()))
             .field("leased", std::uint64_t(job.queue.leasedCount()))
             .field("quarantined", job.queue.quarantined())
             .field("store_skipped",
                    std::uint64_t(_store->unreadable()))
             .field("exit", std::uint64_t(job.exitCode()))
             .str());
}

void
SweepService::cmdStatus(Conn &c, const std::string &line)
{
    std::string id;
    if (!jsonFindString(line, "job", id)) {
        send(c, errReply("status", "missing job"));
        return;
    }
    ServiceJob *job = _jobs.find(id);
    if (!job) {
        send(c, errReply("status", "unknown job " + id));
        return;
    }
    statusReply(c, *job);
}

void
SweepService::cmdResult(Conn &c, const std::string &line)
{
    std::string id;
    if (!jsonFindString(line, "job", id)) {
        send(c, errReply("result", "missing job"));
        return;
    }
    ServiceJob *job = _jobs.find(id);
    if (!job) {
        send(c, errReply("result", "unknown job " + id));
        return;
    }
    if (!job->completed) {
        send(c, errReply("result", "job " + id + " still running"));
        return;
    }
    // Header (record count + quarantined indices), then one line per
    // record: the store line verbatim, escaped. The client rebuilds
    // its SweepResult by parsing these with the SAME parseRecord the
    // store uses, so service results are byte-identical to local
    // ones (hexfloat doubles round-trip exactly).
    std::vector<std::string> records;
    records.reserve(job->total());
    for (std::size_t i = 0; i < job->total(); ++i) {
        if (!job->done[i])
            continue;
        const auto rec = _store->find(job->plan.resultKey(i));
        if (rec)
            records.push_back(ResultStore::formatRecord(*rec));
    }
    send(c, ProtocolMsg("reply", "result")
                .field("ok", std::uint64_t{1})
                .field("job", job->id)
                .field("records", std::uint64_t(records.size()))
                .field("quarantined", job->queue.quarantined())
                .field("exit", std::uint64_t(job->exitCode()))
                .str());
    for (const std::string &r : records)
        if (!send(c, ProtocolMsg("reply", "record")
                         .field("rec", r)
                         .str()))
            return; // client gone; stop streaming
}

void
SweepService::cmdWorkers(Conn &c)
{
    std::uint64_t count = 0;
    for (const Conn &w : _conns)
        if (w.is_worker && !w.dead)
            ++count;
    send(c, ProtocolMsg("reply", "workers")
                .field("ok", std::uint64_t{1})
                .field("count", count)
                .str());
    for (const Conn &w : _conns) {
        if (!w.is_worker || w.dead)
            continue;
        if (!send(c, ProtocolMsg("reply", "worker")
                         .field("name", w.name)
                         .field("leased",
                                std::uint64_t(w.lease_count))
                         .field("job", w.job_id)
                         .str()))
            return;
    }
}

void
SweepService::cmdHello(Conn &c, const std::string &line)
{
    if (_opts.read_only) {
        send(c, errReply("hello", "read-only daemon: no workers"));
        return;
    }
    std::string schema;
    if (!jsonFindString(line, "schema", schema) ||
        schema != schemaTuple()) {
        // A schema-tuple mismatch means this worker would disagree
        // with the daemon about what a store record, an arena file
        // or a sweep hash means — refuse it outright.
        send(c, errReply("hello", "schema mismatch: daemon has " +
                                      schemaTuple() + ", worker has " +
                                      (schema.empty() ? "(none)"
                                                      : schema)));
        return;
    }
    if (!jsonFindString(line, "store", c.store_path) ||
        c.store_path.empty()) {
        send(c, errReply("hello", "missing store path"));
        return;
    }
    jsonFindString(line, "name", c.name);
    if (c.name.empty())
        c.name = ownerKey(c);
    c.is_worker = true;
    progress(ProgressEvent("worker")
                 .field("name", c.name)
                 .field("state", "attach"));
    send(c, ProtocolMsg("reply", "hello")
                .field("ok", std::uint64_t{1})
                .field("lease_size",
                       std::uint64_t(_opts.lease_size))
                .str());
}

void
SweepService::cmdLease(Conn &c)
{
    if (!c.is_worker) {
        send(c, errReply("lease", "hello first"));
        return;
    }
    if (c.lease_count > 0) {
        send(c, errReply("lease", "complete the current lease "
                                  "first"));
        return;
    }
    ServiceJob *job = _jobs.nextLeasable();
    if (!job) {
        // Nothing to do right now; the worker sleeps and re-asks.
        send(c, ProtocolMsg("reply", "lease")
                    .field("ok", std::uint64_t{1})
                    .field("tasks", std::vector<std::size_t>{})
                    .str());
        return;
    }
    const std::vector<std::size_t> tasks =
        job->queue.lease(ownerKey(c), _opts.lease_size);
    c.job_id = job->id;
    c.lease_count = tasks.size();
    progress(ProgressEvent("lease")
                 .field("job", job->id)
                 .field("worker", c.name)
                 .field("tasks", std::uint64_t(tasks.size()))
                 .field("first",
                        std::uint64_t(tasks.empty() ? 0 : tasks[0])));
    send(c, ProtocolMsg("reply", "lease")
                .field("ok", std::uint64_t{1})
                .field("job", job->id)
                .field("spec", job->spec_text)
                .field("tasks", tasks)
                .str());
}

void
SweepService::absorbWorkerStore(Conn &c, ServiceJob &job)
{
    if (!c.store_path.empty())
        _store->merge(c.store_path);
    const std::size_t filled =
        job.plan.prefill(*_store, job.res, job.done);
    job.executed += filled;
    job.queue.markDone(job.done);
}

void
SweepService::cmdComplete(Conn &c, const std::string &line)
{
    std::string id;
    std::vector<std::size_t> tasks;
    if (!c.is_worker || !jsonFindString(line, "job", id) ||
        !jsonFindArray(line, "tasks", tasks)) {
        send(c, errReply("complete", "malformed complete"));
        return;
    }
    ServiceJob *job = _jobs.find(id);
    if (!job) {
        send(c, errReply("complete", "unknown job " + id));
        return;
    }
    std::uint64_t ok = 1;
    jsonFindU64(line, "ok", ok);

    absorbWorkerStore(c, *job);

    // Whatever the worker reported but did not record failed on its
    // watch: requeue for another worker, and charge a strike to the
    // blamed (last-heartbeat) task so a poison task converges to
    // quarantine instead of bouncing forever.
    std::vector<std::size_t> unrecorded;
    const std::string owner = ownerKey(c);
    for (const std::size_t t : tasks) {
        const std::string *holder = job->queue.ownerOf(t);
        if (holder && *holder == owner && job->queue.requeue(t))
            unrecorded.push_back(t);
    }
    if (!unrecorded.empty() || ok == 0) {
        std::string detail;
        jsonFindString(line, "error", detail);
        if (detail.empty())
            detail = std::to_string(unrecorded.size()) +
                     " task(s) unrecorded";
        WorkerFailure f;
        f.worker = c.id;
        f.stalled = false;
        f.detail = detail;
        f.has_task = c.stream.lastHeartbeatTask(f.task);
        const SupervisionVerdict verdict =
            job->supervisor.decide(f);
        warn("microlib_sweepd: worker ", c.name, ": ", verdict.why);
        if (verdict.quarantined &&
            job->queue.quarantine(verdict.task))
            progress(ProgressEvent("quarantine")
                         .field("job", job->id)
                         .field("task",
                                std::uint64_t(verdict.task))
                         .field("desc",
                                job->plan.describe(verdict.task,
                                                   ShardSpec{})));
    }

    c.lease_count = 0;
    _jobs.sweepCompleted();
    if (job->completed)
        progress(ProgressEvent("job_done")
                     .field("job", job->id)
                     .field("executed",
                            std::uint64_t(job->executed))
                     .field("quarantined",
                            std::uint64_t(
                                job->queue.quarantined().size()))
                     .field("exit",
                            std::uint64_t(job->exitCode())));
    send(c, ProtocolMsg("reply", "complete")
                .field("ok", std::uint64_t{1})
                .str());
}

void
SweepService::workerFailed(Conn &c, bool stalled,
                           const std::string &detail)
{
    ServiceJob *job = _jobs.find(c.job_id);
    if (!job) {
        c.lease_count = 0;
        return;
    }
    // Salvage first: every record the worker flushed before dying
    // completes its task — only the genuinely unfinished requeue.
    absorbWorkerStore(c, *job);
    const std::vector<std::size_t> requeued =
        job->queue.release(ownerKey(c));
    WorkerFailure f;
    f.worker = c.id;
    f.stalled = stalled;
    f.detail = detail;
    f.has_task = c.stream.lastHeartbeatTask(f.task);
    const SupervisionVerdict verdict = job->supervisor.decide(f);
    warn("microlib_sweepd: worker ", c.name, ": ", verdict.why);
    if (verdict.quarantined && job->queue.quarantine(verdict.task))
        progress(ProgressEvent("quarantine")
                     .field("job", job->id)
                     .field("task", std::uint64_t(verdict.task))
                     .field("desc",
                            job->plan.describe(verdict.task,
                                               ShardSpec{})));
    progress(ProgressEvent("worker")
                 .field("name", c.name)
                 .field("state", stalled ? "stalled" : "died")
                 .field("requeued", std::uint64_t(requeued.size())));
    c.lease_count = 0;
    _jobs.sweepCompleted();
    if (job->completed)
        progress(ProgressEvent("job_done")
                     .field("job", job->id)
                     .field("executed",
                            std::uint64_t(job->executed))
                     .field("quarantined",
                            std::uint64_t(
                                job->queue.quarantined().size()))
                     .field("exit",
                            std::uint64_t(job->exitCode())));
}

} // namespace microlib
