#include "service/job_table.hh"

#include "core/exit_codes.hh"
#include "core/result_store.hh"
#include "sim/fingerprint.hh"

namespace microlib
{

std::string
jobIdOf(const SweepSpec &spec)
{
    return Fingerprint::hexOf(spec.hash());
}

ServiceJob::ServiceJob(const SweepSpec &spec,
                       const SupervisionPolicy &policy)
    : id(jobIdOf(spec)), spec_text(spec.canonicalText()), plan(spec),
      done(plan.size(), 0), res(plan.emptyResult()),
      supervisor(policy)
{
}

int
ServiceJob::exitCode() const
{
    return queue.quarantined().empty() ? exit_ok : exit_quarantined;
}

JobTable::Submission
JobTable::submit(const SweepSpec &spec, ResultStore &store,
                 const SupervisionPolicy &policy)
{
    const std::string id = jobIdOf(spec);
    const auto it = _jobs.find(id);
    if (it != _jobs.end())
        return {it->second.get(), true};

    auto job = std::make_unique<ServiceJob>(spec, policy);
    // Per-task dedup: anything the global store already holds — from
    // an earlier job or an offline sweep merged in — fills its slot
    // now and never queues.
    job->prefilled = job->plan.prefill(store, job->res, job->done);
    job->queue.reset(job->plan.pendingTasks(job->done, ShardSpec{}));
    job->completed = job->queue.done();
    ServiceJob *raw = job.get();
    _jobs.emplace(id, std::move(job));
    _order.push_back(id);
    sweepCompleted();
    return {raw, false};
}

ServiceJob *
JobTable::find(const std::string &id)
{
    const auto it = _jobs.find(id);
    return it == _jobs.end() ? nullptr : it->second.get();
}

void
JobTable::erase(const std::string &id)
{
    _jobs.erase(id);
    for (auto it = _order.begin(); it != _order.end(); ++it) {
        if (*it == id) {
            _order.erase(it);
            break;
        }
    }
}

ServiceJob *
JobTable::nextLeasable()
{
    for (const std::string &id : _order) {
        ServiceJob *job = find(id);
        if (job && !job->completed && job->queue.pendingCount() > 0)
            return job;
    }
    return nullptr;
}

void
JobTable::sweepCompleted()
{
    std::size_t done_count = 0;
    for (const auto &kv : _jobs) {
        if (kv.second->queue.done())
            kv.second->completed = true;
        if (kv.second->completed)
            ++done_count;
    }
    // Evict oldest completed jobs beyond the cap; their records
    // survive in the store, so a resubmit reconstructs the job by
    // prefill alone.
    for (auto it = _order.begin();
         it != _order.end() && done_count > _max_done;) {
        ServiceJob *job = find(*it);
        if (job && job->completed) {
            _jobs.erase(*it);
            it = _order.erase(it);
            --done_count;
        } else {
            ++it;
        }
    }
}

} // namespace microlib
