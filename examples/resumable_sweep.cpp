/**
 * @file
 * Resumable sweep: run a (benchmark x mechanism) matrix backed by the
 * versioned result store.
 *
 * Run it once and every cell executes; kill it mid-sweep (Ctrl-C) and
 * run it again, and only the missing cells execute — completed runs
 * are read back from the store, bit-identical. Change any system
 * parameter and the old records go stale by fingerprint: they are
 * ignored, never silently reused. See docs/RESULT_STORE.md.
 *
 * Pass a shard spec as the second argument (e.g. `0/2`) to run only
 * that shard of the matrix — the remaining tasks are counted as
 * skipped-by-shard, left for the other shards (docs/SHARDING.md).
 *
 * Usage: resumable_sweep [store-path] [shard i/N]
 * Default store path: resumable_sweep.results
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/result_store.hh"
#include "core/scheduler.hh"

using namespace microlib;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "resumable_sweep.results";
    ShardSpec shard;
    if (argc > 2 && !ShardSpec::parse(argv[2], shard)) {
        std::fprintf(stderr, "bad shard spec '%s' (want i/N)\n",
                     argv[2]);
        return 2;
    }

    const std::vector<std::string> mechanisms = {"Base", "TP", "SP",
                                                 "VC", "GHB"};
    const std::vector<std::string> benchmarks = {"swim", "gzip", "mcf",
                                                 "crafty"};
    RunConfig cfg;
    cfg.scale.simpoint_trace = 500'000;
    cfg.scale.simpoint_interval = 250'000;

    ResultStore store(path);
    std::printf("result store: %s (%zu record(s) on disk)\n",
                path.c_str(), store.size());

    EngineOptions opts;
    opts.verbose = true; // watch runs complete (and persist)
    opts.store = &store;
    opts.shard = shard;
    ExperimentEngine engine(opts);

    const MatrixResult res = engine.run(mechanisms, benchmarks, cfg);
    const RunCounters counts = engine.lastRun();
    // Resume accounting must stay truthful under sharding: every
    // task is either executed here, restored from the store, or
    // explicitly left to another shard — never silently dropped.
    std::printf("\nsweep done (shard %s): %zu run(s) resumed from "
                "the store, %zu executed now, %zu skipped for other "
                "shards\n",
                shard.str().c_str(), counts.resumed, counts.executed,
                counts.skipped);

    std::printf("\n%-8s", "");
    for (const auto &b : benchmarks)
        std::printf("%10s", b.c_str());
    std::printf("\n");
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
        std::printf("%-8s", mechanisms[m].c_str());
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            std::printf("%10.4f", res.ipc[m][b]);
        std::printf("\n");
    }
    std::printf("\nIPC matrix over %u worker(s); rerun me — nothing "
                "above will re-execute.\n",
                engine.threads());
    return 0;
}
