/**
 * @file
 * Extending MicroLib: define a brand-new mechanism against the public
 * CacheMechanism API and race it against the published ones.
 *
 * This is the paper's whole program — "a library of modular simulator
 * components that researchers can plug their propositions into" — in
 * one file: a naive next-N-line prefetcher written from scratch,
 * evaluated with exactly the same traces, system and metrics as the
 * twelve published mechanisms.
 */

#include <cstdio>
#include <string>

#include "core/scheduler.hh"

using namespace microlib;

namespace
{

/** A toy sequential prefetcher: on every L2 miss, grab the next N
 *  lines. Degree is the only parameter. */
class NextNLinePrefetcher : public CacheMechanism
{
  public:
    NextNLinePrefetcher(unsigned degree, const MechanismConfig &cfg)
        : CacheMechanism("NextN", cfg), _degree(degree), _queue(16)
    {
    }

    void
    cacheAccess(CacheLevel lvl, const MemRequest &req, bool hit,
                bool first_use) override
    {
        (void)first_use;
        if (lvl != CacheLevel::L2 || hit)
            return;
        for (unsigned d = 1; d <= _degree; ++d)
            issueL2Prefetch(_queue, req.addr + d * l2LineBytes(),
                            req.pc, req.when);
    }

    std::vector<SramSpec>
    hardware() const override
    {
        return {{"nextn.queue", 16 * 8, 0, 1}};
    }

  private:
    unsigned _degree;
    RequestQueue _queue;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "mgrid";

    RunConfig cfg;
    std::printf("Racing a custom next-N-line prefetcher against TP "
                "and SP on '%s'\n\n",
                benchmark.c_str());

    EngineOptions opts;
    opts.threads = 1; // trace() runs on the caller; no pool needed
    ExperimentEngine engine(opts);
    const auto trace = engine.trace(benchmark, cfg);
    const double base = runOne(*trace, "Base", cfg).ipc();

    std::printf("%-22s %8s %10s\n", "mechanism", "IPC", "speedup");
    for (const char *name : {"TP", "SP", "GHB"}) {
        const RunOutput r = runOne(*trace, name, cfg);
        std::printf("%-22s %8.4f %10.3f\n", name, r.ipc(),
                    r.ipc() / base);
    }

    // The custom mechanism follows the exact same path: bind, attach,
    // run over the shared trace.
    for (unsigned degree : {1u, 2u, 4u}) {
        Hierarchy hier(cfg.system.hier, trace->image);
        MechanismConfig mc;
        NextNLinePrefetcher mech(degree, mc);
        mech.bind(hier);
        hier.setClient(&mech);
        OoOCore core(cfg.system.core);
        // The cached trace carries a prebuilt SoA view: stream it
        // instead of the AoS records.
        const CoreResult res = core.run(trace->view(), hier);
        std::printf("NextN(degree=%u)%6s %8.4f %10.3f\n", degree, "",
                    res.ipc, res.ipc / base);
    }

    std::printf("\nAny mechanism written against the public API gets "
                "the full methodology for free:\nsame traces, same "
                "system, same metrics.\n");
    return 0;
}
