/**
 * @file
 * Quickstart: simulate one benchmark with and without a prefetcher.
 *
 * Demonstrates the minimal MicroLib workflow:
 *   1. pick a benchmark stand-in and materialize a trace window,
 *   2. run the baseline system,
 *   3. plug in a mechanism by acronym and run again,
 *   4. compare IPCs.
 *
 * Usage: quickstart [benchmark] [mechanism]
 * Defaults: swim GHB
 */

#include <cstdio>
#include <string>

#include "core/scheduler.hh"
#include "sim/logging.hh"
#include "trace/spec_suite.hh"

using namespace microlib;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "swim";
    const std::string mechanism = argc > 2 ? argv[2] : "GHB";

    RunConfig cfg;
    std::printf("MicroLib quickstart: %s vs Base on '%s'\n",
                mechanism.c_str(), benchmark.c_str());
    std::printf("trace: SimPoint window of %llu instructions\n",
                static_cast<unsigned long long>(
                    cfg.scale.simpoint_trace));

    // Both runs share one cached trace: bit-identical inputs, the
    // paper's methodological requirement. threads=1: trace() runs on
    // the caller, so a worker pool would only sit idle.
    EngineOptions opts;
    opts.threads = 1;
    ExperimentEngine engine(opts);
    const auto trace = engine.trace(benchmark, cfg);

    const RunOutput base = runOne(*trace, "Base", cfg);
    const RunOutput mech = runOne(*trace, mechanism, cfg);

    std::printf("\n%-10s IPC %.4f  (L1 miss rate %.2f%%, L2 misses %.0f)\n",
                "Base", base.ipc(),
                100.0 * base.stat("l1d.demand_misses") /
                    base.stat("l1d.demand_accesses"),
                base.stat("l2.demand_misses"));
    std::printf("%-10s IPC %.4f  (prefetches issued %.0f)\n",
                mechanism.c_str(), mech.ipc(),
                mech.stat("mech." + mechanism + ".prefetches_issued"));
    std::printf("\nspeedup: %.3f\n", mech.ipc() / base.ipc());
    return 0;
}
