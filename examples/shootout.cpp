/**
 * @file
 * Mechanism shootout: the paper's Figure 4 comparison on a chosen
 * subset of benchmarks, as a compact example of the experiment
 * engine's run-matrix API.
 *
 * Usage: shootout [bench1 bench2 ...]
 * Default: one memory-bound FP, one pointer chaser, one cache-
 * resident INT — a miniature of the suite's diversity.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/ranking.hh"
#include "core/scheduler.hh"

using namespace microlib;

int
main(int argc, char **argv)
{
    std::vector<std::string> benchmarks;
    for (int i = 1; i < argc; ++i)
        benchmarks.push_back(argv[i]);
    if (benchmarks.empty())
        benchmarks = {"swim", "mcf", "crafty"};

    RunConfig cfg;
    ExperimentEngine engine;
    std::printf("Shootout over:");
    for (const auto &b : benchmarks)
        std::printf(" %s", b.c_str());
    std::printf("\n(13 mechanisms x %zu benchmarks; SimPoint windows "
                "of %llu instructions; %u workers)\n\n",
                benchmarks.size(),
                static_cast<unsigned long long>(
                    cfg.scale.simpoint_trace),
                engine.threads());

    const MatrixResult matrix =
        engine.run(allMechanismNames(), benchmarks, cfg);

    std::printf("%-8s", "mech");
    for (const auto &b : matrix.benchmarks)
        std::printf(" %9s", b.c_str());
    std::printf(" %9s\n", "avg");
    for (std::size_t m = 0; m < matrix.mechanisms.size(); ++m) {
        if (matrix.mechanisms[m] == "Base")
            continue;
        std::printf("%-8s", matrix.mechanisms[m].c_str());
        for (std::size_t b = 0; b < matrix.benchmarks.size(); ++b)
            std::printf(" %9.3f", matrix.speedup(m, b));
        std::printf(" %9.3f\n", matrix.avgSpeedup(m));
    }

    const auto ranking = rankMechanisms(matrix);
    std::printf("\nwinner on this selection: %s (avg speedup %.3f)\n",
                ranking.front().mechanism.c_str(),
                ranking.front().avg_speedup);
    std::printf("Try different selections — Table 6 of the paper "
                "shows how far cherry-picking can go.\n");
    return 0;
}
