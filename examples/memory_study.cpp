/**
 * @file
 * Memory-model study: what the SDRAM model adds over a constant
 * latency (the paper's Section 3.3 in miniature, single benchmark).
 *
 * Prints the DRAM-internal statistics — row hits/conflicts, queue
 * stalls, average latency — under the Table 1 SDRAM for a
 * row-friendly benchmark (swim) and a row-hostile one (lucas), then
 * shows how the same benchmark's IPC changes under the flat 70-cycle
 * SimpleScalar memory.
 */

#include <cstdio>
#include <string>

#include "core/scheduler.hh"

using namespace microlib;

namespace
{

void
study(ExperimentEngine &engine, const std::string &benchmark)
{
    RunConfig sdram;
    RunConfig flat;
    flat.system = makeConstantMemoryBaseline(70);

    const auto trace = engine.trace(benchmark, sdram);
    const RunOutput rs = runOne(*trace, "Base", sdram);
    const RunOutput rf = runOne(*trace, "Base", flat);

    const double reads = rs.stat("dram.reads");
    const double hits = rs.stat("dram.row_hits");
    const double conf = rs.stat("dram.row_conflicts");

    std::printf("%s:\n", benchmark.c_str());
    std::printf("  IPC (SDRAM)        %8.4f\n", rs.ipc());
    std::printf("  IPC (flat 70)      %8.4f\n", rf.ipc());
    std::printf("  DRAM reads         %8.0f\n", reads);
    std::printf("  row hit rate       %7.1f%%\n",
                reads ? 100.0 * hits / (hits + conf +
                                        rs.stat("dram.row_empty"))
                      : 0.0);
    std::printf("  row conflicts      %8.0f\n", conf);
    std::printf("  queue stalls       %8.0f\n",
                rs.stat("dram.queue_stalls"));
    std::printf("  avg DRAM latency   %8.1f cycles\n\n",
                rs.stat("dram.latency"));
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("SDRAM vs constant-latency memory (cf. paper "
                "Figure 8)\n\n");
    EngineOptions opts;
    opts.threads = 1; // trace() runs on the caller; no pool needed
    ExperimentEngine engine(opts);
    if (argc > 1) {
        study(engine, argv[1]);
        return 0;
    }
    study(engine, "swim");  // streaming: row-buffer friendly
    study(engine, "lucas"); // bit-reversal: row-buffer hostile
    std::printf("The flat model treats both alike; the SDRAM model "
                "separates them —\nwhich is exactly why the paper "
                "finds rankings flip with model precision.\n");
    return 0;
}
