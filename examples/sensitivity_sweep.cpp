/**
 * @file
 * Sensitivity sweep: one declarative SweepSpec, many configurations.
 *
 * The paper's core argument is that mechanism comparisons depend on
 * the system configuration they run under (Figures 6-8): a prefetcher
 * that wins under a 1 MB L2 can lose under a 256 kB one. This example
 * declares that whole study as data — benchmarks x mechanisms x an
 * L2-size axis — runs it through the engine once, and prints the
 * per-variant IPC matrices plus the cross-variant sensitivity table.
 *
 * Pass a .sweep file to run any other study without recompiling:
 *
 *   sensitivity_sweep examples/sensitivity.sweep
 *
 * See docs/SWEEP_SPEC.md for the format and the axis registry.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/scheduler.hh"
#include "core/sweep_spec.hh"
#include "sim/fingerprint.hh"

using namespace microlib;

int
main(int argc, char **argv)
{
    SweepSpec spec;
    std::string error;
    if (argc > 1) {
        if (!SweepSpec::load(argv[1], spec, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    } else {
        // The same study, declared programmatically.
        spec.setBenchmarks({"pchase", "swim", "gzip"});
        spec.setMechanisms({"Base", "TP", "GHB"});
        bool ok = spec.addBase("window.trace_length", "100000", &error) &&
                  spec.addBase("window.interval", "100000", &error) &&
                  spec.addAxis("hier.l2.size", {"256k", "1M"}, &error);
        if (!ok) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }

    std::printf("spec %s (%zu variant(s)):\n%s\n",
                Fingerprint::hexOf(spec.hash()).c_str(),
                spec.variantCount(), spec.canonicalText().c_str());

    ExperimentEngine engine;
    const SweepResult res = engine.run(spec);

    for (std::size_t v = 0; v < res.matrices.size(); ++v) {
        const MatrixResult &m = res.matrices[v];
        std::printf("variant %s:\n", res.variants[v].c_str());
        for (std::size_t mi = 0; mi < m.mechanisms.size(); ++mi) {
            std::printf("  %-6s", m.mechanisms[mi].c_str());
            for (std::size_t b = 0; b < m.benchmarks.size(); ++b)
                std::printf(" %s=%.4f", m.benchmarks[b].c_str(),
                            m.ipc[mi][b]);
            std::printf("\n");
        }
    }
    sensitivityTable(res).print(std::cout);
    return 0;
}
